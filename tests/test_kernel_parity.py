"""Parity suite for the hybrid steady-state batch kernel.

The kernel's whole contract is "indistinguishable within 0.1% where it
engages, bit-identical where it does not".  These tests pin both halves:
certified full-window points against event-exact DES runs, the dynamic
decertification fallback, the static routing (topology, faults,
tracing), and the ``auto`` window-length gate - plus unit tests for the
certification math and the exact tiled statistics.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core.experiment import (
    ExperimentSettings,
    MeasurementPoint,
    simulate_point,
    simulate_point_observed,
)
from repro.fpga.address_gen import AddressingMode
from repro.fpga.board import AC510Board
from repro.hmc.packet import RequestType
from repro.sim import batch

DEFAULT = ExperimentSettings()
FAST = ExperimentSettings(warmup_us=10.0, window_us=40.0)

#: The acceptance tolerance the bench gates on: 0.1% relative error.
PARITY_TOL = 0.001


def _rel(base: float, other: float) -> float:
    if math.isnan(base) and math.isnan(other):
        return 0.0
    if math.isnan(base) or math.isnan(other):
        return math.inf
    if base == 0.0:
        return abs(other)
    return abs(other - base) / abs(base)


def _worst_error(des, hybrid) -> float:
    return max(
        _rel(des.bandwidth_gbs, hybrid.bandwidth_gbs),
        _rel(des.mrps, hybrid.mrps),
        _rel(des.read_latency_avg_ns, hybrid.read_latency_avg_ns),
        _rel(des.write_latency_avg_ns, hybrid.write_latency_avg_ns),
    )


def _point(settings, request_type=RequestType.READ, payload=128,
           mode=AddressingMode.RANDOM):
    return MeasurementPoint(
        request_type=request_type,
        payload_bytes=payload,
        mode=mode,
        settings=settings,
    )


# ----------------------------------------------------------------------
# certified parity at full windows
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "request_type, payload, mode",
    [
        (RequestType.READ, 128, AddressingMode.RANDOM),
        (RequestType.WRITE, 64, AddressingMode.RANDOM),
    ],
    ids=["ro128r", "wo64r"],
)
def test_certified_point_matches_des_within_tolerance(request_type, payload, mode):
    des_m, des_info = simulate_point_observed(
        _point(DEFAULT, request_type, payload, mode)
    )
    hyb_m, hyb_info = simulate_point_observed(
        _point(replace(DEFAULT, kernel="batch"), request_type, payload, mode)
    )
    assert des_info["kernel"] == "des"
    assert hyb_info["kernel"] == "batch", hyb_info["reason"]
    assert _worst_error(des_m, hyb_m) <= PARITY_TOL
    # The window advance ratio is the deterministic speedup measure.
    assert hyb_info["events_equivalent"] / hyb_info["events"] >= 5.0


def test_auto_batches_full_windows_and_declines_fast_ones():
    _, full = simulate_point_observed(_point(replace(DEFAULT, kernel="auto")))
    assert full["kernel"] == "batch", full["reason"]
    _, fast = simulate_point_observed(_point(replace(FAST, kernel="auto")))
    assert fast["kernel"] == "des"
    assert fast["reason"] == "window too short for auto"


# ----------------------------------------------------------------------
# broader sweep at fast windows: every point stays within a loose bound
# whichever path (certified advance or fallback) it takes.  The 0.1%
# guarantee only holds at full windows - short probes can certify beat
# patterns the long window rejects, which is exactly why ``auto``
# refuses windows under AUTO_MIN_WINDOW_US and ``--fast`` runs DES.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("payload", [32, 64, 128])
@pytest.mark.parametrize(
    "request_type", [RequestType.READ, RequestType.WRITE], ids=["ro", "wo"]
)
@pytest.mark.parametrize(
    "mode", [AddressingMode.RANDOM, AddressingMode.LINEAR], ids=["rnd", "lin"]
)
def test_fast_sweep_parity(payload, request_type, mode):
    des_m, _ = simulate_point(_point(FAST, request_type, payload, mode))
    hyb_m, info = simulate_point_observed(
        _point(replace(FAST, kernel="batch"), request_type, payload, mode)
    )
    if info["kernel"] == "des":
        # Fallback is bit-identical, not merely close (NaN-aware
        # comparison: a read-only point has NaN write latency on both).
        assert _worst_error(des_m, hyb_m) == 0.0
        assert hyb_m.reads_completed == des_m.reads_completed
        assert hyb_m.writes_completed == des_m.writes_completed
    else:
        assert _worst_error(des_m, hyb_m) <= 0.025


# ----------------------------------------------------------------------
# dynamic decertification and static routing
# ----------------------------------------------------------------------
def test_non_stationary_mix_decertifies_and_falls_back_exactly():
    des_m, _ = simulate_point(_point(FAST, RequestType.READ_MODIFY_WRITE))
    hyb_m, info = simulate_point_observed(
        _point(replace(FAST, kernel="batch"), RequestType.READ_MODIFY_WRITE)
    )
    assert info["kernel"] == "des"
    assert info["reason"].startswith("non-stationary")
    assert hyb_m == des_m  # rw completes both kinds: no NaN fields


def test_topology_routes_to_des():
    from repro.topology.spec import TopologySpec

    settings = replace(FAST, kernel="batch", topology=TopologySpec("chain", 2))
    _, info = simulate_point_observed(_point(settings))
    assert info["kernel"] == "des"
    assert info["reason"] == "topology"


def test_static_eligibility_rejects_unmodelled_configurations():
    board = AC510Board()
    assert batch.static_eligibility(board) == (True, "")
    assert batch.static_eligibility(board, tracer=object())[1] == "tracing"
    board.controller.tracer = object()
    assert batch.static_eligibility(board)[1] == "tracing"
    board.controller.tracer = None
    board.controller.fault_model = object()
    assert batch.static_eligibility(board)[1] == "faults"
    board.controller.fault_model = None
    board.device.refresh = object()
    assert batch.static_eligibility(board)[1] == "refresh"


def test_tracing_forces_des_even_under_batch_kernel():
    from repro.core.experiment import simulate_point_traced

    point = _point(replace(FAST, kernel="batch"))
    measurement, tracer = simulate_point_traced(point, sample=4)
    baseline, _ = simulate_point(_point(FAST))
    # Tracer attached => static ineligibility => the traced measurement
    # is the event-exact one.
    assert _worst_error(baseline, measurement) == 0.0
    assert len(list(tracer.contexts)) > 0


def test_invalid_kernel_name_is_rejected():
    with pytest.raises(ValueError, match="kernel"):
        ExperimentSettings(kernel="vectorized")


# ----------------------------------------------------------------------
# unit tests: certification math and exact tiled statistics
# ----------------------------------------------------------------------
def _stationary_chunks(chunks=batch.PROBE_CHUNKS):
    events = np.full(chunks, 1000.0)
    lats = np.full(chunks, 500.0)
    outstanding = np.full(chunks, 64.0)
    queued = np.zeros(chunks)
    return events, lats, outstanding, queued


def test_certify_accepts_stationary_stream():
    cert = batch._certify(*_stationary_chunks())
    assert cert.certified
    assert cert.reason == ""


def test_certify_rejects_trending_completion_rate():
    events, lats, outstanding, queued = _stationary_chunks()
    events = events * np.linspace(1.0, 1.3, len(events))
    cert = batch._certify(events, lats, outstanding, queued)
    assert not cert.certified
    assert "non-stationary" in cert.reason


def test_certify_rejects_empty_or_completionless_chunks():
    events, lats, outstanding, queued = _stationary_chunks()
    empty = events.copy()
    empty[-1] = 0.0
    assert not batch._certify(empty, lats, outstanding, queued).certified
    nan_lats = lats.copy()
    nan_lats[-2] = math.nan
    assert not batch._certify(events, nan_lats, outstanding, queued).certified


def test_certify_rejects_oscillating_latency():
    events, lats, outstanding, queued = _stationary_chunks()
    lats = lats * (1.0 + 0.05 * np.array([(-1.0) ** i for i in range(len(lats))]))
    cert = batch._certify(events, lats, outstanding, queued)
    assert not cert.certified
    assert "latency" in cert.reason


def test_certify_all_zero_queued_span_skips_queue_gate():
    # Workloads that never queue (all-zero chunk_queued) must certify:
    # the queue gate only engages at depths >= MIN_QUEUE_DEPTH_FOR_GATE,
    # and a zero-depth span reports a clean 0.0 spread rather than the
    # inf a naive relative spread of zeros would produce.
    events, lats, outstanding, queued = _stationary_chunks()
    assert not queued.any()
    cert = batch._certify(events, lats, outstanding, queued)
    assert cert.certified
    assert cert.queue_spread == 0.0


def test_certify_single_completion_chunks():
    # One completion per chunk is the thinnest stream that is still
    # fully observed: every chunk is non-empty and has a latency mean,
    # so the gates must evaluate it (and a perfectly steady one-a-chunk
    # stream certifies) instead of tripping an emptiness guard.
    events = np.ones(batch.PROBE_CHUNKS)
    lats = np.full(batch.PROBE_CHUNKS, 480.0)
    outstanding = np.ones(batch.PROBE_CHUNKS)
    queued = np.zeros(batch.PROBE_CHUNKS)
    cert = batch._certify(events, lats, outstanding, queued)
    assert cert.certified
    assert cert.event_spread == 0.0
    # ... but one missing completion in the span decertifies.
    gappy = events.copy()
    gappy[-3] = 0.0
    assert not batch._certify(gappy, lats, outstanding, queued).certified


def test_certify_nan_latency_means_decertify():
    # A NaN latency mean marks a chunk that saw no completions; one NaN
    # anywhere in the span - first, last, or everywhere - must decertify
    # (NaNs would otherwise propagate into every spread metric).
    events, lats, outstanding, queued = _stationary_chunks()
    for position in (len(lats) - batch.SPAN_CHUNKS, len(lats) - 1):
        nan_lats = lats.copy()
        nan_lats[position] = math.nan
        cert = batch._certify(events, nan_lats, outstanding, queued)
        assert not cert.certified
        assert cert.reason == "chunk without completions"
    all_nan = np.full_like(lats, math.nan)
    assert not batch._certify(events, all_nan, outstanding, queued).certified


def test_tiled_stats_match_explicit_concatenation():
    rng = np.random.default_rng(7)
    span = rng.uniform(400.0, 900.0, size=311)
    partial = span[:57]
    tiles = 5
    stats = batch._tiled_stats(span, partial, tiles)
    explicit = np.concatenate([np.tile(span, tiles), partial])
    assert stats.count == explicit.size
    assert stats.total == pytest.approx(explicit.sum(), rel=1e-12)
    assert stats.mean == pytest.approx(explicit.mean(), rel=1e-12)
    assert stats.variance == pytest.approx(explicit.var(ddof=0), rel=1e-9)
    assert stats.minimum == explicit.min()
    assert stats.maximum == explicit.max()
    assert batch._tiled_stats(np.array([]), np.array([]), 3) is None


# ----------------------------------------------------------------------
# the vectorized probe kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "request_type, payload, mode",
    [
        (RequestType.READ, 128, AddressingMode.RANDOM),
        (RequestType.WRITE, 64, AddressingMode.RANDOM),
    ],
    ids=["ro128r", "wo64r"],
)
def test_vector_certified_point_matches_des_within_tolerance(
    request_type, payload, mode
):
    des_m, des_info = simulate_point_observed(
        _point(DEFAULT, request_type, payload, mode)
    )
    vec_m, vec_info = simulate_point_observed(
        _point(replace(DEFAULT, kernel="vector"), request_type, payload, mode)
    )
    assert des_info["kernel"] == "des"
    assert vec_info["kernel"] == "vector", vec_info["reason"]
    assert _worst_error(des_m, vec_m) <= PARITY_TOL
    # 3 calibration chunks of 48: a 16x advance, ~3x the batch kernel's.
    assert vec_info["events_equivalent"] / vec_info["events"] >= 15.0
    # The wall breakdown is observable and covers the window wall.
    assert vec_info["probe_wall_s"] > 0.0
    assert vec_info["probe_wall_s"] + vec_info["tail_wall_s"] <= (
        vec_info["window_wall_s"] + 1e-6
    )


def test_vector_decertified_window_falls_back_bit_identically(monkeypatch):
    from repro.sim import vectorprobe
    from repro.sim.batch import Certification

    des_m, _ = simulate_point(_point(DEFAULT))
    monkeypatch.setattr(
        vectorprobe,
        "_certify",
        lambda *args, **kwargs: Certification(False, "forced decert"),
    )
    vec_m, info = simulate_point_observed(_point(replace(DEFAULT, kernel="vector")))
    assert info["kernel"] == "des"
    assert info["reason"] == "forced decert"
    assert _worst_error(des_m, vec_m) == 0.0
    assert vec_m.reads_completed == des_m.reads_completed
    assert vec_m.writes_completed == des_m.writes_completed


def test_vector_short_window_falls_back_statically():
    # Windows below the static floor never even run the calibration:
    # the synthetic model chunks cannot observe drift that happens
    # after the probe, so short (--fast-style) windows go straight to
    # the DES, bit-identically.
    from repro.sim import vectorprobe

    assert FAST.window_us < vectorprobe.MIN_WINDOW_US
    des_m, _ = simulate_point(_point(FAST))
    vec_m, info = simulate_point_observed(_point(replace(FAST, kernel="vector")))
    assert info["kernel"] == "des"
    assert info["reason"] == "window too short for vector calibration"
    assert _worst_error(des_m, vec_m) == 0.0
    assert vec_m.reads_completed == des_m.reads_completed


def test_vector_topology_routes_to_des():
    from repro.topology.spec import TopologySpec

    settings = replace(FAST, kernel="vector", topology=TopologySpec("chain", 2))
    _, info = simulate_point_observed(_point(settings))
    assert info["kernel"] == "des"
    assert info["reason"] == "topology"


def test_vector_capacity_gate_rejects_impossible_rates(monkeypatch):
    # A fit claiming more completions/ns than the construction-time
    # delay tables can serve must decertify, not extrapolate garbage.
    from repro.sim import vectorprobe

    des_m, _ = simulate_point(_point(DEFAULT))
    monkeypatch.setattr(vectorprobe, "capacity_per_ns", lambda *a, **k: 1e-6)
    vec_m, info = simulate_point_observed(_point(replace(DEFAULT, kernel="vector")))
    assert info["kernel"] == "des"
    assert "capacity" in info["reason"]
    assert _worst_error(des_m, vec_m) == 0.0


def test_vector_group_matches_per_point_plan():
    # The grouping parity contract: a warm-start group run (what the
    # executor dispatches) is identical - not merely close - to running
    # each point alone with the same plan's hints.
    from repro.core.experiment import (
        simulate_point_hinted,
        simulate_vector_group,
        vector_group_order,
    )

    settings = replace(DEFAULT, kernel="vector")
    points = [
        _point(settings, rt, payload, AddressingMode.RANDOM)
        for rt, payload in [
            (RequestType.READ, 128),
            (RequestType.READ, 64),
            (RequestType.WRITE, 128),
        ]
    ]
    grouped = simulate_vector_group(points)
    heads: dict = {}
    for i in vector_group_order(points):
        family = (points[i].request_type, points[i].mode)
        measurement, events, info = simulate_point_hinted(
            points[i], warm=heads.get(family)
        )
        if family not in heads:
            heads[family] = info.get("steady_state")
        assert grouped[i] == (measurement, events)


def test_executor_groups_vector_sweeps():
    # The jobs=1 executor path dispatches eligible vector points as one
    # group and returns exactly what the group runner produces.
    from repro.core import parallel
    from repro.core.experiment import simulate_vector_group

    settings = replace(DEFAULT, kernel="vector")
    points = [
        _point(settings, RequestType.READ, payload, AddressingMode.RANDOM)
        for payload in (128, 64)
    ]
    groups, singles = parallel._vector_groups(points)
    assert groups == [[0, 1]] and singles == []
    executor = parallel.MeasurementExecutor(jobs=1, use_cache=False)
    got = executor.measure_points(points)
    want = [m for m, _ in simulate_vector_group(points)]
    assert got == want
    # Mixed batches leave non-vector (and topology) points ungrouped.
    mixed = points + [_point(FAST)]
    groups, singles = parallel._vector_groups(mixed)
    assert groups == [[0, 1]] and singles == [2]


def test_vector_warm_start_shrinks_probe_and_stays_in_budget():
    # A warm-started window runs the shorter calibration (2 chunks, no
    # transient guard), re-certifies independently, and still lands
    # within the 0.1% parity budget of the event-exact run.
    from repro.fpga.board import AC510Board
    from repro.fpga.gups import PortConfig
    from repro.sim import vectorprobe

    def vector_window(payload, warm=None):
        point = _point(DEFAULT, RequestType.READ, payload)
        board = AC510Board(
            config=DEFAULT.config,
            calibration=DEFAULT.calibration,
            max_block_bytes=DEFAULT.max_block_bytes,
        )
        gups = board.load_gups(
            PortConfig(
                request_type=point.request_type,
                payload_bytes=point.payload_bytes,
                mode=point.mode,
                mask=point.mask,
                seed=point.seed,
            )
        )
        gups.start()
        board.sim.run(until=DEFAULT.warmup_us * 1e3)
        outcome = vectorprobe.run_window(
            board, DEFAULT.window_us * 1e3, warm=warm
        )
        gups.stop()
        return outcome, board.controller

    cold, _ = vector_window(128)
    assert cold.used_vector, cold.reason
    assert cold.diagnostics["probe_chunks"] == vectorprobe.COLD_PROBE_CHUNKS
    assert not cold.diagnostics["warm_started"]
    assert cold.steady_state is not None

    warm, controller = vector_window(64, warm=cold.steady_state)
    assert warm.used_vector, warm.reason
    assert warm.diagnostics["probe_chunks"] == vectorprobe.WARM_PROBE_CHUNKS
    assert warm.diagnostics["warm_started"]
    assert warm.events_equivalent / warm.events >= 20.0  # 48/2 = 24x

    des_m, _ = simulate_point(_point(DEFAULT, RequestType.READ, 64))
    assert _rel(des_m.bandwidth_gbs, controller.bandwidth_gbs) <= PARITY_TOL
    assert (
        _rel(des_m.read_latency_avg_ns, controller.read_latency.stats.mean)
        <= PARITY_TOL
    )
