"""Tests for the MVA queueing model and the bottleneck predictor."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.bottleneck import BottleneckModel
from repro.analysis.queueing import (
    knee_population,
    mva,
    mva_sweep,
    saturation_throughput_per_ns,
)
from repro.core.patterns import pattern_by_name
from repro.hmc.packet import RequestType

MODEL = BottleneckModel()

services = st.floats(min_value=0.5, max_value=500.0, allow_nan=False)
thinks = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)
populations = st.integers(min_value=1, max_value=300)


# ----------------------------------------------------------------------
# MVA math
# ----------------------------------------------------------------------
def test_single_customer_sees_no_queueing():
    result = mva(service_ns=10.0, think_ns=90.0, population=1)
    assert result.response_ns == pytest.approx(10.0)
    assert result.round_trip_ns == pytest.approx(100.0)
    assert result.throughput_per_ns == pytest.approx(0.01)


def test_large_population_saturates_bottleneck():
    result = mva(service_ns=10.0, think_ns=90.0, population=500)
    assert result.throughput_per_ns == pytest.approx(0.1, rel=1e-3)
    # All excess population queues at the bottleneck: R ~ N*s - Z.
    assert result.response_ns == pytest.approx(500 * 10.0 - 90.0, rel=0.01)


@given(services, thinks, populations)
def test_mva_invariants(service, think, population):
    result = mva(service, think, population)
    # Throughput below both asymptotes.
    assert result.throughput_per_ns <= saturation_throughput_per_ns(service) + 1e-12
    assert result.throughput_per_ns <= population / (think + service) + 1e-12
    # Little's law holds for the whole network.
    resident = result.throughput_per_ns * result.round_trip_ns
    assert resident == pytest.approx(population, rel=1e-6)


@given(services, thinks)
def test_mva_monotone_in_population(service, think):
    previous = None
    for n in (1, 4, 16, 64):
        result = mva(service, think, n)
        if previous is not None:
            assert result.throughput_per_ns >= previous.throughput_per_ns - 1e-12
            assert result.response_ns >= previous.response_ns - 1e-9
        previous = result


def test_mva_sweep_matches_individual_runs():
    sweep = mva_sweep(10.0, 90.0, [1, 5, 20])
    for prediction in sweep:
        alone = mva(10.0, 90.0, prediction.population)
        assert prediction.throughput_per_ns == pytest.approx(alone.throughput_per_ns)


def test_knee_population():
    assert knee_population(10.0, 90.0) == pytest.approx(10.0)


def test_mva_validation():
    with pytest.raises(ValueError):
        mva(0.0, 1.0, 1)
    with pytest.raises(ValueError):
        mva(1.0, -1.0, 1)
    with pytest.raises(ValueError):
        mva(1.0, 1.0, 0)


# ----------------------------------------------------------------------
# bottleneck identification
# ----------------------------------------------------------------------
def test_targeted_patterns_are_bank_bound():
    for name in ("1 bank", "2 banks", "4 banks"):
        prediction = MODEL.predict(pattern_by_name(name))
        assert prediction.bottleneck.name == "banks"


def test_one_vault_is_vault_bound():
    prediction = MODEL.predict(pattern_by_name("1 vault"), payload_bytes=128)
    assert prediction.bottleneck.name == "vault data bus"


def test_distributed_reads_are_rx_bound():
    prediction = MODEL.predict(pattern_by_name("16 vaults"), payload_bytes=128)
    assert prediction.bottleneck.name == "link RX"


def test_distributed_writes_are_token_bound():
    prediction = MODEL.predict(
        pattern_by_name("16 vaults"),
        request_type=RequestType.WRITE,
        payload_bytes=128,
    )
    assert prediction.bottleneck.name == "link tokens"


def test_bank_doubling_halves_bank_service():
    one = MODEL.predict(pattern_by_name("1 bank"))
    two = MODEL.predict(pattern_by_name("2 banks"))
    assert two.bottleneck.service_ns == pytest.approx(one.bottleneck.service_ns / 2)


def test_no_load_round_trip_matches_stream_measurement():
    """The delay-station estimate must land near the simulated no-load
    RTT (Fig. 15's minimums), modulo the stream-drain path."""
    analytic = MODEL.no_load_round_trip_ns(RequestType.READ, 128)
    assert analytic == pytest.approx(711.0, abs=60.0)
    small = MODEL.no_load_round_trip_ns(RequestType.READ, 16)
    assert small == pytest.approx(655.0, abs=60.0)
    assert analytic > small


def test_prediction_bandwidth_accounts_overhead():
    prediction = MODEL.predict(pattern_by_name("16 vaults"), payload_bytes=128)
    assert prediction.raw_bytes_per_request == 160
