"""Tests for link fault injection and the retry path."""

import pytest

from repro.faults import LinkFaultModel
from repro.fpga.board import AC510Board
from repro.fpga.gups import PortConfig
from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import Request


def run_with_faults(error_rate, duration_ns=40000.0, seed=5):
    board = AC510Board()
    if error_rate is not None:
        board.controller.fault_model = LinkFaultModel(
            flit_error_rate=error_rate, seed=seed
        )
    gups = board.load_gups(PortConfig(payload_bytes=128))
    gups.start()
    board.sim.run(until=duration_ns / 4)
    board.controller.begin_measurement()
    board.sim.run(until=duration_ns)
    board.controller.end_measurement()
    gups.stop()
    board.sim.run()
    return board


# ----------------------------------------------------------------------
# model math
# ----------------------------------------------------------------------
def test_packet_error_probability_compounds_per_flit():
    model = LinkFaultModel(flit_error_rate=0.01)
    single = model.packet_error_probability(1)
    assert single == pytest.approx(0.01)
    assert model.packet_error_probability(10) == pytest.approx(
        1 - 0.99**10
    )
    assert model.packet_error_probability(10) > single


def test_zero_rate_never_fails():
    model = LinkFaultModel(flit_error_rate=0.0)
    request = Request(address=0, payload_bytes=128, is_write=False, port=0)
    assert not any(model.transaction_fails(request) for _ in range(100))
    assert model.retries == 0


def test_validation():
    with pytest.raises(ConfigurationError):
        LinkFaultModel(flit_error_rate=1.0)
    with pytest.raises(ConfigurationError):
        LinkFaultModel(flit_error_rate=-0.1)
    with pytest.raises(ConfigurationError):
        LinkFaultModel(retry_latency_ns=-1.0)
    with pytest.raises(ConfigurationError):
        LinkFaultModel(max_retries=0)


def test_retry_counting_per_transaction():
    model = LinkFaultModel(flit_error_rate=0.9999, seed=1, max_retries=3)
    request = Request(address=0, payload_bytes=128, is_write=False, port=0)
    assert model.transaction_fails(request)
    assert model.transactions_affected == 1
    assert model.transaction_fails(request)
    assert model.transactions_affected == 1  # same transaction
    assert model.retries == 2
    model.transaction_fails(request)
    with pytest.raises(RuntimeError):
        model.transaction_fails(request)  # exceeds max_retries


# ----------------------------------------------------------------------
# closed-loop behaviour
# ----------------------------------------------------------------------
def test_no_faults_baseline_unchanged():
    clean = run_with_faults(None)
    zero = run_with_faults(0.0)
    assert clean.controller.bandwidth_gbs == pytest.approx(
        zero.controller.bandwidth_gbs
    )


def test_faults_conserve_requests():
    board = run_with_faults(0.002)
    controller = board.controller
    assert controller.submitted == controller.completed
    assert controller.outstanding == 0
    assert board.controller.fault_model.retries > 0


def test_faults_stretch_latency_tail():
    clean = run_with_faults(None)
    faulty = run_with_faults(0.002)
    clean_max = clean.controller.read_latency.stats.maximum
    faulty_max = faulty.controller.read_latency.stats.maximum
    assert faulty_max > clean_max
    assert (
        faulty.controller.read_latency.stats.mean
        > clean.controller.read_latency.stats.mean
    )


def test_faults_cost_bandwidth():
    clean = run_with_faults(None)
    very_faulty = run_with_faults(0.01)
    assert very_faulty.controller.bandwidth_gbs < clean.controller.bandwidth_gbs


def test_fault_injection_deterministic():
    a = run_with_faults(0.003, seed=9)
    b = run_with_faults(0.003, seed=9)
    assert a.controller.bandwidth_gbs == pytest.approx(b.controller.bandwidth_gbs)
    assert a.controller.fault_model.retries == b.controller.fault_model.retries
