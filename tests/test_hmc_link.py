"""Tests for the link channels and the token flow control."""

import pytest

from repro.hmc.errors import ConfigurationError
from repro.hmc.link import Channel, Link, LinkTokenPool
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Channel
# ----------------------------------------------------------------------
def test_channel_service_time():
    sim = Simulator()
    chan = Channel(sim, bytes_per_ns=10.0, packet_overhead_ns=5.0)
    assert chan.service_ns(100) == pytest.approx(15.0)
    assert chan.acquire(100) == pytest.approx(15.0)


def test_channel_fifo_queueing():
    sim = Simulator()
    chan = Channel(sim, bytes_per_ns=1.0, packet_overhead_ns=0.0)
    assert chan.acquire(10) == pytest.approx(10.0)
    assert chan.acquire(10) == pytest.approx(20.0)


def test_channel_earliest_release():
    sim = Simulator()
    chan = Channel(sim, bytes_per_ns=1.0, packet_overhead_ns=0.0)
    done = chan.acquire(10, earliest=50.0)
    assert done == pytest.approx(60.0)


def test_channel_counters_and_reset():
    sim = Simulator()
    chan = Channel(sim, bytes_per_ns=1.0, packet_overhead_ns=1.0)
    chan.acquire(9)
    assert chan.packets == 1
    assert chan.bytes == 9
    assert chan.busy_time == pytest.approx(10.0)
    chan.reset_counters()
    assert chan.packets == 0 and chan.bytes == 0 and chan.busy_time == 0.0


def test_channel_validation():
    with pytest.raises(ConfigurationError):
        Channel(Simulator(), bytes_per_ns=0.0, packet_overhead_ns=0.0)
    with pytest.raises(ConfigurationError):
        Channel(Simulator(), bytes_per_ns=1.0, packet_overhead_ns=-1.0)


# ----------------------------------------------------------------------
# LinkTokenPool
# ----------------------------------------------------------------------
def test_token_batches_grant_and_wait():
    sim = Simulator()
    pool = LinkTokenPool(sim, 10)
    granted = []
    assert pool.acquire(9, lambda: granted.append("big"))
    assert pool.available == 1
    assert not pool.acquire(2, lambda: granted.append("blocked"))
    pool.release(9)
    sim.run()
    assert granted == ["blocked"]
    assert pool.available == 8


def test_token_fifo_no_overtaking():
    """A 1-flit read must not starve a queued 9-flit write forever."""
    sim = Simulator()
    pool = LinkTokenPool(sim, 10)
    order = []
    pool.acquire(10, lambda: order.append("hog"))  # takes everything
    pool.acquire(9, lambda: order.append("write"))
    pool.acquire(1, lambda: order.append("read"))
    pool.release(10)
    sim.run()
    assert order == ["write", "read"]


def test_token_release_wakes_multiple_waiters():
    sim = Simulator()
    pool = LinkTokenPool(sim, 4)
    woken = []
    pool.acquire(4, lambda: None)
    pool.acquire(2, lambda: woken.append(1))
    pool.acquire(2, lambda: woken.append(2))
    pool.release(4)
    sim.run()
    assert woken == [1, 2]


def test_token_overflow_raises():
    sim = Simulator()
    pool = LinkTokenPool(sim, 4)
    with pytest.raises(RuntimeError):
        pool.release(1)


def test_oversized_packet_rejected():
    sim = Simulator()
    pool = LinkTokenPool(sim, 4)
    with pytest.raises(ConfigurationError):
        pool.acquire(5, lambda: None)


def test_link_assembles_channels_and_tokens():
    sim = Simulator()
    link = Link(
        sim,
        index=0,
        tx_bytes_per_ns=10.0,
        tx_overhead_ns=3.0,
        rx_bytes_per_ns=13.7,
        rx_overhead_ns=5.0,
        tokens_flits=108,
        propagation_ns=3.2,
    )
    assert link.tx.name == "link0.tx"
    assert link.tokens.capacity == 108
    link.tx.acquire(16)
    link.reset_counters()
    assert link.tx.packets == 0
