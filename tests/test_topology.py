"""Multi-cube topology subsystem: routing, mapping, physics, plumbing.

Covers the acceptance criteria of the topology subsystem: route tables
for the built-in shapes, cube-level address mapping round-trips, the
N=1 bit-identity guarantee, the chain's linear hop-latency ladder, the
pass-through bandwidth cap, and the topology field's trip through the
cache key, the wire schema, and the service daemon.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core import cache, schema
from repro.core.experiment import (
    ExperimentSettings,
    MeasurementPoint,
    simulate_point,
)
from repro.fpga.board import AC510Board
from repro.fpga.controller import HmcController
from repro.fpga.gups import Gups, PortConfig
from repro.hmc.address import CubeMapping
from repro.hmc.calibration import DEFAULT_CALIBRATION
from repro.hmc.device import HMCDevice
from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import RequestType
from repro.sim.engine import Simulator
from repro.topology import CubeNetwork, TopologySpec


# ----------------------------------------------------------------------
# TopologySpec: validation and route tables
# ----------------------------------------------------------------------
def test_spec_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        TopologySpec("mesh", 4)
    with pytest.raises(ConfigurationError):
        TopologySpec("chain", 3)
    with pytest.raises(ConfigurationError):
        TopologySpec("chain", 16)
    with pytest.raises(ConfigurationError):
        TopologySpec("ring", 2)
    with pytest.raises(ConfigurationError):
        TopologySpec("chain", 4, "diagonal")


def test_chain_routes_walk_every_link():
    spec = TopologySpec("chain", 4)
    assert spec.num_hop_links == 3
    assert spec.routes() == {
        0: (),
        1: ((0, True),),
        2: ((0, True), (1, True)),
        3: ((0, True), (1, True), (2, True)),
    }
    assert spec.max_hops == 3


def test_star_routes_are_single_hop():
    spec = TopologySpec("star", 8)
    assert spec.num_hop_links == 7
    routes = spec.routes()
    assert all(len(routes[cube]) == 1 for cube in range(1, 8))


def test_ring_routes_take_the_short_way():
    spec = TopologySpec("ring", 8)
    assert spec.num_hop_links == 8
    routes = spec.routes()
    # forward up to half-way (ties forward), backward past it
    assert routes[4] == ((0, True), (1, True), (2, True), (3, True))
    assert routes[5] == ((7, False), (6, False), (5, False))
    assert routes[7] == ((7, False),)
    assert spec.max_hops == 4


def test_trivial_spec_has_no_links():
    spec = TopologySpec("chain", 1)
    assert spec.is_trivial
    assert spec.num_hop_links == 0
    assert spec.routes() == {0: ()}


# ----------------------------------------------------------------------
# CubeMapping: split/merge round-trips and cube-pinning masks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["contiguous", "interleave"])
@pytest.mark.parametrize("num_cubes", [1, 2, 4, 8])
def test_cube_mapping_round_trips(mode, num_cubes):
    mapping = CubeMapping(num_cubes, 1 << 32, mode=mode)
    rng = random.Random(5)
    for _ in range(200):
        address = rng.randrange(mapping.total_capacity_bytes)
        cube, local = mapping.split(address)
        assert 0 <= cube < num_cubes
        assert 0 <= local < mapping.cube_capacity_bytes
        assert mapping.merge(cube, local) == address


def test_interleave_stripes_round_robin():
    mapping = CubeMapping(4, 1 << 32, mode="interleave", stripe_bytes=128)
    cubes = [mapping.split(stripe * 128)[0] for stripe in range(8)]
    assert cubes == [0, 1, 2, 3, 0, 1, 2, 3]


def test_cube_mask_pins_addresses_onto_one_cube():
    mapping = CubeMapping(4, 1 << 32)
    rng = random.Random(9)
    for cube in range(4):
        mask = mapping.cube_mask(cube)
        for _ in range(50):
            address = mask.apply(rng.randrange(mapping.total_capacity_bytes))
            assert mapping.split(address)[0] == cube


def test_cube_mask_requires_contiguous_mapping():
    mapping = CubeMapping(4, 1 << 32, mode="interleave")
    with pytest.raises(ConfigurationError):
        mapping.cube_mask(1)


# ----------------------------------------------------------------------
# N=1 bit-identity
# ----------------------------------------------------------------------
def _gups_counters(device_factory):
    """Run one fixed GUPS workload; return the controller's counters."""
    sim = Simulator()
    device = device_factory(sim)
    controller = HmcController(sim, device, DEFAULT_CALIBRATION)
    gups = Gups(
        sim,
        device,
        controller,
        config=PortConfig(request_type=RequestType.READ, payload_bytes=32),
        active_ports=2,
        calibration=DEFAULT_CALIBRATION,
    )
    gups.start()
    sim.run(until=5_000.0)
    controller.begin_measurement()
    sim.run(until=20_000.0)
    controller.end_measurement()
    return (
        controller.bandwidth_gbs,
        controller.mrps,
        controller.completed,
        controller.read_latency.stats.mean,
        controller.read_latency.stats.maximum,
    )


def test_single_cube_network_is_bit_identical_to_device():
    """The trivial CubeNetwork path must not perturb a single float."""
    direct = _gups_counters(lambda sim: HMCDevice(sim))
    networked = _gups_counters(
        lambda sim: CubeNetwork(sim, TopologySpec("chain", 1))
    )
    assert direct == networked


def test_trivial_topology_point_matches_plain_point(tiny_settings):
    """Board level: chain-1 settings reproduce the no-topology result."""
    plain = MeasurementPoint(payload_bytes=32, settings=tiny_settings)
    trivial = MeasurementPoint(
        payload_bytes=32,
        settings=dataclasses.replace(
            tiny_settings, topology=TopologySpec("chain", 1)
        ),
    )
    m_plain, _ = simulate_point(plain)
    m_trivial, _ = simulate_point(trivial)
    # dataclass equality would fail on NaN write latency; the wire dict
    # encodes NaN as a comparable sentinel.
    assert schema.measurement_to_dict(m_plain) == schema.measurement_to_dict(
        m_trivial
    )


# ----------------------------------------------------------------------
# chain physics: hop-latency ladder and the pass-through cap
# ----------------------------------------------------------------------
def test_chain_hop_latency_is_monotone_and_linear(fast_settings):
    from repro.experiments import net_hop_latency

    result = net_hop_latency.run(fast_settings)
    assert net_hop_latency.check_shape(result) == []
    latencies = [p.read_latency_avg_ns for p in result.points]
    assert latencies == sorted(latencies)


def test_remote_bandwidth_saturates_the_hop_cap(fast_settings):
    from repro.experiments import net_remote_bandwidth

    result = net_remote_bandwidth.run(fast_settings)
    assert net_remote_bandwidth.check_shape(result) == []
    assert result.remote_gbs <= result.hop_cap_gbs * 1.05


def test_network_resets_hop_counters_at_measurement_start(tiny_settings):
    """begin_measurement must zero pass-through hop occupancy too."""
    board = AC510Board(topology=TopologySpec("chain", 2))
    network = board.network
    assert network is not None
    network.hops[0].down.packets = 99
    board.controller.begin_measurement()
    assert network.hops[0].down.packets == 0


# ----------------------------------------------------------------------
# cache key, wire schema, service daemon
# ----------------------------------------------------------------------
def test_cache_key_sees_the_topology(tiny_settings):
    plain = MeasurementPoint(settings=tiny_settings)
    chained = MeasurementPoint(
        settings=dataclasses.replace(
            tiny_settings, topology=TopologySpec("chain", 4)
        )
    )
    starred = MeasurementPoint(
        settings=dataclasses.replace(
            tiny_settings, topology=TopologySpec("star", 4)
        )
    )
    keys = {cache.cache_key(p) for p in (plain, chained, starred)}
    assert len(keys) == 3


def test_cache_round_trips_topology_keyed_results(tmp_path, tiny_settings):
    point = MeasurementPoint(
        payload_bytes=32,
        settings=dataclasses.replace(
            tiny_settings, topology=TopologySpec("chain", 2)
        ),
    )
    measurement, _ = simulate_point(point)
    store = cache.ResultCache(tmp_path)
    key = cache.cache_key(point)
    store.store(key, measurement)
    loaded = store.load(key)
    assert schema.measurement_to_dict(loaded) == schema.measurement_to_dict(
        measurement
    )


def test_topology_payload_round_trips():
    spec = TopologySpec("ring", 8, "interleave")
    payload = spec.to_dict()
    assert payload["schema"] == schema.SCHEMA_VERSION
    assert payload["kind"] == "topology"
    assert TopologySpec.from_dict(payload) == spec


def test_settings_payload_round_trips_topology(tiny_settings):
    settings = dataclasses.replace(
        tiny_settings, topology=TopologySpec("star", 4)
    )
    assert ExperimentSettings.from_dict(settings.to_dict()) == settings


def test_settings_payload_omits_topology_when_unset(tiny_settings):
    """Single-cube payloads stay byte-identical to pre-topology ones."""
    payload = tiny_settings.to_dict()
    assert "topology" not in payload
    assert ExperimentSettings.from_dict(payload).topology is None


def test_schema_one_readers_tolerate_unknown_fields(tiny_settings):
    """A v1 reader must ignore additive fields, not reject them."""
    payload = tiny_settings.to_dict()
    payload["future_extension"] = {"anything": 1}
    decoded = ExperimentSettings.from_dict(payload)
    assert decoded == tiny_settings

    point = MeasurementPoint(settings=tiny_settings)
    measurement, _ = simulate_point(
        dataclasses.replace(point, payload_bytes=32)
    )
    wire = schema.measurement_to_dict(measurement)
    wire["future_field"] = "ignored"
    assert schema.measurement_from_dict(wire) == measurement


def test_service_round_trips_topology_points():
    """The daemon simulates and returns a topology-keyed point."""
    from repro.core import parallel
    from repro.service.client import ServiceClient
    from repro.service.server import BackgroundService

    settings = ExperimentSettings(
        warmup_us=5.0, window_us=15.5, topology=TopologySpec("chain", 2)
    )
    point = MeasurementPoint(
        payload_bytes=32, active_ports=1, settings=settings
    )
    expected, _ = simulate_point(point)
    parallel.reset()
    with BackgroundService(jobs=1) as service:
        with ServiceClient(port=service.port) as client:
            measurement = client.measure(point)
    assert schema.measurement_to_dict(measurement) == schema.measurement_to_dict(
        expected
    )
