"""Tests for the content-addressed on-disk measurement cache."""

import json
import math

from repro.core import cache as cache_mod
from repro.core.cache import ResultCache, cache_key, default_cache_dir
from repro.core.schema import measurement_from_dict, measurement_to_dict
from repro.core.experiment import (
    ExperimentSettings,
    MeasurementPoint,
    simulate_point,
)
from repro.core.patterns import pattern_by_name
from repro.hmc.packet import RequestType

TINY = ExperimentSettings(warmup_us=5.0, window_us=10.0)


def _point(**overrides):
    pattern = pattern_by_name("1 bank", TINY.config)
    defaults = dict(request_type=RequestType.READ, payload_bytes=32, settings=TINY)
    defaults.update(overrides)
    return MeasurementPoint.for_pattern(pattern, **defaults)


def test_cache_key_is_stable_and_input_sensitive():
    assert cache_key(_point()) == cache_key(_point())
    baseline = cache_key(_point())
    assert cache_key(_point(payload_bytes=64)) != baseline
    assert cache_key(_point(request_type=RequestType.WRITE)) != baseline
    assert cache_key(_point(active_ports=3)) != baseline
    assert cache_key(_point(settings=ExperimentSettings())) != baseline


def test_model_version_bump_invalidates_keys(monkeypatch):
    before = cache_key(_point())
    monkeypatch.setattr(cache_mod, "MODEL_VERSION", cache_mod.MODEL_VERSION + 1)
    assert cache_key(_point()) != before


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro-hmc"


def test_measurement_round_trips_through_json_including_nan():
    measurement, events = simulate_point(_point())
    assert events > 0
    # Read-only runs have no write latency: the NaN must survive JSON.
    assert math.isnan(measurement.write_latency_avg_ns)
    payload = json.loads(json.dumps(measurement_to_dict(measurement)))
    restored = measurement_from_dict(payload)
    assert repr(restored) == repr(measurement)


def test_store_load_and_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    point = _point()
    key = cache_key(point)
    assert cache.load(key) is None
    measurement, _ = simulate_point(point)
    cache.store(key, measurement)
    loaded = cache.load(key)
    assert repr(loaded) == repr(measurement)
    # A truncated/garbage entry must read as a miss, never an error.
    cache._path(key).write_text("{not json")
    assert cache.load(key) is None


def test_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.stats().entries == 0
    measurement, _ = simulate_point(_point())
    for payload in (16, 32):
        cache.store(cache_key(_point(payload_bytes=payload)), measurement)
    stats = cache.stats()
    assert stats.entries == 2
    assert stats.total_bytes > 0
    assert "2 entries" in stats.render()
    assert cache.clear() == 2
    assert cache.stats().entries == 0


def test_kernel_gets_its_own_cache_key():
    from dataclasses import replace

    des_key = cache_key(_point())
    batch_key = cache_key(_point(settings=replace(TINY, kernel="batch")))
    auto_key = cache_key(_point(settings=replace(TINY, kernel="auto")))
    # Extrapolated results must never shadow event-exact ones (or each
    # other), and the DES key must match what pre-kernel builds computed.
    assert len({des_key, batch_key, auto_key}) == 3
