"""Lifecycle tracer: sampling, telescoping spans, and determinism."""

from __future__ import annotations

import pytest

from repro.core import schema
from repro.core.experiment import (
    ExperimentSettings,
    MeasurementPoint,
    simulate_point,
    simulate_point_traced,
)
from repro.hmc.packet import Request, RequestType
from repro.obs import trace as obs_trace
from repro.obs.trace import STAGES, TraceContext, Tracer


def _request(port: int = 0, submit_ns: float = 0.0) -> Request:
    request = Request(address=0, payload_bytes=128, is_write=False, port=port)
    request.submit_ns = submit_ns
    return request


# ----------------------------------------------------------------------
# TraceContext: telescoping invariant
# ----------------------------------------------------------------------
def test_spans_telescope_exactly_to_latency():
    context = TraceContext(0)
    context.submit_ns = 100.0
    context.tx_pipeline_ns = 110.0
    context.tx_start_ns = 115.0
    context.link_tx_done_ns = 120.0
    context.vault_arrival_ns = 140.0
    context.bank_start_ns = 150.0
    context.dram_done_ns = 190.0
    context.rx_done_ns = 230.0
    context.complete_ns = 240.0
    spans = context.spans()
    assert [stage for stage, _, _ in spans] == list(STAGES)
    assert spans[0][1] == 100.0
    assert spans[-1][2] == 240.0
    # each span starts where the previous ended
    for (_, _, end), (_, start, _) in zip(spans, spans[1:]):
        assert end == start
    assert sum(end - start for _, start, end in spans) == context.latency_ns


def test_missing_stamp_folds_into_the_following_stage():
    """A station a path never crosses leaves no gap in the timeline."""
    context = TraceContext(0)
    context.submit_ns = 0.0
    context.tx_pipeline_ns = 10.0
    context.rx_done_ns = 90.0  # everything between folds into link_rx
    context.complete_ns = 100.0
    durations = context.stage_durations()
    assert set(durations) == {"tx_pipeline", "link_rx", "rx_pipeline"}
    assert durations["link_rx"] == 80.0
    assert sum(durations.values()) == context.latency_ns


def test_unfinished_context_raises_on_latency():
    with pytest.raises(ValueError):
        TraceContext(0).latency_ns


# ----------------------------------------------------------------------
# Tracer: head-based sampling
# ----------------------------------------------------------------------
def test_sample_one_traces_every_request():
    tracer = Tracer(sample=1)
    requests = [_request() for _ in range(5)]
    for request in requests:
        tracer.attach(request)
    assert all(request.trace is not None for request in requests)
    assert tracer.started == 5


def test_sample_n_traces_first_then_every_nth():
    tracer = Tracer(sample=3)
    requests = [_request() for _ in range(9)]
    for request in requests:
        tracer.attach(request)
    traced = [i for i, request in enumerate(requests) if request.trace is not None]
    assert traced == [0, 3, 6]
    assert tracer.started == 3


def test_finish_copies_request_stamps_and_detaches():
    tracer = Tracer(sample=1)
    request = _request(port=2, submit_ns=5.0)
    tracer.attach(request)
    request.link = 1
    request.vault_arrival_ns = 20.0
    request.bank_start_ns = 25.0
    request.complete_ns = 60.0
    context = request.trace
    tracer.finish(request)
    assert request.trace is None
    assert context.link == 1
    assert context.vault_arrival_ns == 20.0
    assert context.complete_ns == 60.0
    assert context.finished
    assert list(tracer.contexts) == [context]


def test_bounded_store_counts_evictions():
    tracer = Tracer(sample=1, capacity=2)
    for i in range(4):
        request = _request(submit_ns=float(i))
        tracer.attach(request)
        request.complete_ns = float(i) + 1.0
        tracer.finish(request)
    assert len(tracer.contexts) == 2
    assert tracer.evicted == 2
    assert tracer.completed == 4


def test_invalid_sample_rejected():
    with pytest.raises(ValueError):
        Tracer(sample=0)
    with pytest.raises(ValueError):
        obs_trace.configure(0)


# ----------------------------------------------------------------------
# process-wide configuration
# ----------------------------------------------------------------------
def test_active_sample_prefers_config_over_environment(monkeypatch):
    monkeypatch.setenv(obs_trace.SAMPLE_ENV, "8")
    assert obs_trace.active_sample() == 8
    obs_trace.configure(2)
    try:
        assert obs_trace.active_sample() == 2
    finally:
        obs_trace.configure(None)


def test_blank_or_invalid_environment_reads_as_off(monkeypatch):
    for raw in ("", "0", "-3", "not-a-number"):
        monkeypatch.setenv(obs_trace.SAMPLE_ENV, raw)
        assert obs_trace.active_sample() is None
    monkeypatch.delenv(obs_trace.SAMPLE_ENV)
    assert obs_trace.tracer_for_run() is None


# ----------------------------------------------------------------------
# end-to-end: traced simulation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_run():
    """One tiny traced simulation shared by the end-to-end assertions."""
    point = MeasurementPoint(
        request_type=RequestType.READ,
        payload_bytes=128,
        settings=ExperimentSettings(warmup_us=5.0, window_us=15.0),
        pattern_name="trace-test",
    )
    measurement, tracer = simulate_point_traced(point, sample=1)
    return point, measurement, tracer


def test_traced_measurement_is_bit_identical_to_untraced(traced_run):
    point, measurement, _ = traced_run
    untraced, _events = simulate_point(point)
    assert schema.dumps(schema.measurement_to_dict(measurement)) == schema.dumps(
        schema.measurement_to_dict(untraced)
    )


def test_every_finished_span_telescopes_to_its_rtt(traced_run):
    _, _, tracer = traced_run
    finished = [context for context in tracer.contexts if context.finished]
    assert len(finished) > 100
    for context in finished:
        covered = sum(end - start for _, start, end in context.spans())
        # within one engine tick (1 ns) of the reported round trip
        assert covered == pytest.approx(context.latency_ns, abs=1.0)


def test_traced_reads_carry_the_full_station_sequence(traced_run):
    _, _, tracer = traced_run
    reads = [c for c in tracer.contexts if c.finished and not c.is_write]
    assert reads, "tiny window produced no finished reads"
    stages = {stage for c in reads for stage in c.stage_durations()}
    assert stages == set(STAGES)
