"""Tests for the HMC structural configurations (Table I, Eq. 1-2)."""

import pytest

from repro.hmc.config import (
    ALL_PRESETS,
    HMC_1_0,
    HMC_1_1_2GB,
    HMC_1_1_4GB,
    HMC_2_0_4GB,
    HMC_2_0_8GB,
    HMCConfig,
    LinkConfig,
    GBYTE,
    MBYTE,
)
from repro.hmc.errors import ConfigurationError


def test_equation_1_bank_count():
    """#Banks = 8 layers x 16 partitions x 2 banks = 256 (paper Eq. 1)."""
    assert HMC_1_1_4GB.num_banks == 256


def test_equation_2_peak_bandwidth():
    """Two half-width 15 Gbps links = 60 GB/s bi-directional (Eq. 2)."""
    assert HMC_1_1_4GB.links.peak_bandwidth_gbs == pytest.approx(60.0)


def test_gen1_structure():
    assert HMC_1_0.capacity_bytes == 512 * MBYTE
    assert HMC_1_0.num_banks == 128
    assert HMC_1_0.bank_bytes == 4 * MBYTE
    assert HMC_1_0.partition_bytes == 8 * MBYTE
    assert HMC_1_0.banks_per_vault == 8


def test_gen2_4gb_structure():
    cfg = HMC_1_1_4GB
    assert cfg.capacity_bytes == 4 * GBYTE
    assert cfg.bank_bytes == 16 * MBYTE
    assert cfg.partition_bytes == 32 * MBYTE
    assert cfg.banks_per_vault == 16
    assert cfg.vaults_per_quadrant == 4
    assert cfg.rows_per_bank == 16 * MBYTE // 256


def test_gen2_2gb_structure():
    assert HMC_1_1_2GB.capacity_bytes == 2 * GBYTE
    assert HMC_1_1_2GB.num_banks == 128


def test_hmc20_structure():
    assert HMC_2_0_4GB.num_vaults == 32
    assert HMC_2_0_4GB.vaults_per_quadrant == 8
    assert HMC_2_0_4GB.num_banks == 256
    assert HMC_2_0_8GB.num_banks == 512
    assert HMC_2_0_8GB.bank_bytes == 16 * MBYTE
    assert HMC_2_0_8GB.partition_bytes == 32 * MBYTE


def test_page_size_smaller_than_ddr4():
    """HMC rows are 256 B; DDR4 rows are 512-2048 B (paper SII-C)."""
    for preset in ALL_PRESETS:
        assert preset.page_bytes == 256


def test_all_presets_validate():
    for preset in ALL_PRESETS:
        preset.validate()
        row = preset.table_row()
        assert row["# Vaults"] == preset.num_vaults


def test_inconsistent_capacity_rejected():
    with pytest.raises(ConfigurationError):
        HMCConfig(
            name="bad",
            generation="x",
            capacity_bytes=4 * GBYTE,
            num_dram_layers=4,
            dram_layer_bits=4 * (1 << 30),  # 4 layers x 4Gb = 2 GB != 4 GB
        )


def test_vaults_must_divide_into_quadrants():
    with pytest.raises(ConfigurationError):
        HMCConfig(
            name="bad",
            generation="x",
            capacity_bytes=512 * MBYTE,
            num_dram_layers=4,
            dram_layer_bits=1 << 30,
            num_vaults=18,
        )


def test_link_config_validation():
    with pytest.raises(ConfigurationError):
        LinkConfig(num_links=3)
    with pytest.raises(ConfigurationError):
        LinkConfig(lanes_per_link=4)
    with pytest.raises(ConfigurationError):
        LinkConfig(gbps_per_lane=20.0)


def test_link_speeds():
    full = LinkConfig(num_links=4, lanes_per_link=16, gbps_per_lane=15.0)
    assert full.link_gbs_per_direction == pytest.approx(30.0)
    assert full.peak_bandwidth_gbs == pytest.approx(240.0)
    slow = LinkConfig(num_links=2, lanes_per_link=8, gbps_per_lane=10.0)
    assert slow.peak_bandwidth_gbs == pytest.approx(40.0)
