"""Tests for the Little's-law analysis helpers."""

import pytest

from repro.core.experiment import LatencySweepPoint
from repro.core.littles_law import (
    LittlesLawAnalysis,
    is_saturated,
    occupancy_bytes,
    occupancy_requests,
    saturation_point,
)


def point(ports, bw, lat_ns, mrps=None):
    # Default MRPS consistent with 128 B reads: bw / 160 B per request.
    rate = mrps if mrps is not None else bw / 160.0 * 1e3
    return LatencySweepPoint(
        active_ports=ports, bandwidth_gbs=bw, mrps=rate, read_latency_avg_ns=lat_ns
    )


def test_occupancy_is_lambda_times_w():
    p = point(1, 16.0, 1000.0)  # 100 M req/s for 1 us
    assert occupancy_requests(p) == pytest.approx(100.0)
    assert occupancy_bytes(p, 144) == pytest.approx(14400.0)


def test_saturation_point_picks_knee_not_top():
    sweep = [
        point(1, 5.0, 1000.0),
        point(2, 9.8, 2000.0),  # within 5% of max: the knee
        point(3, 10.0, 3000.0),
        point(4, 10.0, 4000.0),
    ]
    knee = saturation_point(sweep)
    assert knee.active_ports == 2


def test_saturation_point_tolerance():
    sweep = [point(1, 9.0, 1.0), point(2, 10.0, 2.0)]
    assert saturation_point(sweep, tolerance=0.15).active_ports == 1
    assert saturation_point(sweep, tolerance=0.01).active_ports == 2


def test_saturation_point_empty_rejected():
    with pytest.raises(ValueError):
        saturation_point([])


def test_is_saturated_flat_tail():
    sweep = [point(1, 5.0, 1.0), point(2, 10.0, 2.0), point(3, 10.1, 3.0)]
    assert is_saturated(sweep)


def test_is_not_saturated_when_still_scaling():
    sweep = [point(1, 5.0, 1.0), point(2, 10.0, 2.0), point(3, 15.0, 3.0)]
    assert not is_saturated(sweep)


def test_is_saturated_needs_two_points():
    assert not is_saturated([point(1, 5.0, 1.0)])


def test_analysis_from_sweep():
    sweep = [
        point(1, 5.0, 1000.0),
        point(2, 10.0, 2000.0),
        point(3, 10.0, 3000.0),
    ]
    analysis = LittlesLawAnalysis.from_sweep("4 banks", 128, sweep)
    assert analysis.pattern_name == "4 banks"
    assert analysis.saturated
    assert analysis.saturation_bandwidth_gbs == pytest.approx(10.0)
    assert analysis.saturation_latency_ns == pytest.approx(2000.0)
    assert analysis.occupancy_requests == pytest.approx(10.0 / 160.0 * 2000.0)
