"""Tests for the campaign driver and the CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core import parallel
from repro.core.campaign import run_campaign, run_experiment
from repro.core.experiment import ExperimentSettings

STATIC_IDS = ("table1", "table2", "table3", "fig3")


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------
def test_run_experiment_static():
    outcome = run_experiment("table2")
    assert outcome.passed
    assert "Table II" in outcome.report
    assert outcome.seconds >= 0


def test_run_experiment_simulated(tiny_settings):
    outcome = run_experiment("fig14", tiny_settings)
    assert outcome.passed
    assert "287" in outcome.report or "288" in outcome.report


def test_campaign_subset():
    result = run_campaign(experiment_ids=STATIC_IDS)
    assert result.passed
    assert set(result.outcomes) == set(STATIC_IDS)
    summary = result.summary()
    assert "all claims reproduced" in summary
    full = result.full_report()
    for experiment_id in STATIC_IDS:
        assert f"[{experiment_id}]" in full


def test_campaign_unknown_id_rejected():
    with pytest.raises(KeyError):
        run_campaign(experiment_ids=("fig99",))


def test_campaign_shares_measurement_cache(tiny_settings):
    """fig16 reuses fig7/fig8-style measurements; the second run of the
    same id must be much faster thanks to the memoized measurements."""
    first = run_experiment("fig16", tiny_settings)
    second = run_experiment("fig16", tiny_settings)
    assert second.seconds < first.seconds / 2 + 0.2


def test_campaign_parallel_identical_to_serial_then_warm(
    tmp_path, monkeypatch, tiny_settings
):
    """Determinism and cache acceptance: ``--jobs 4`` reports are
    byte-identical to ``--jobs 1``, and a warm rerun simulates nothing."""
    ids = ("fig7", "fig8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    parallel.reset()
    serial = run_campaign(tiny_settings, experiment_ids=ids, jobs=1)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel.reset()
    pooled = run_campaign(tiny_settings, experiment_ids=ids, jobs=4)
    assert parallel.stats().simulations > 0
    for experiment_id in ids:
        assert (
            pooled.outcomes[experiment_id].report
            == serial.outcomes[experiment_id].report
        )
        assert pooled.outcomes[experiment_id].passed
    # Warm rerun against the populated disk cache with the in-process
    # memo dropped: zero simulations, identical reports.
    parallel.reset()
    warm = run_campaign(tiny_settings, experiment_ids=ids, jobs=4)
    assert parallel.stats().simulations == 0
    for experiment_id in ids:
        assert (
            warm.outcomes[experiment_id].report
            == serial.outcomes[experiment_id].report
        )
    parallel.reset()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "failures" in out


def test_cli_run_static(capsys):
    assert cli_main(["run", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_cli_run_rejects_unknown():
    with pytest.raises(SystemExit):
        cli_main(["run", "fig99"])


def test_cli_campaign_subset_writes_output(tmp_path, capsys):
    output = tmp_path / "report.txt"
    code = cli_main(["campaign", "--only", "table1", "table2", "--output", str(output)])
    assert code == 0
    assert output.exists()
    text = output.read_text()
    assert "[table1]" in text and "[table2]" in text
    assert "Campaign summary" in capsys.readouterr().out


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        cli_main([])


def test_cli_sweep_to_stdout(capsys):
    code = cli_main(["sweep", "--patterns", "2 banks", "--sizes", "32", "--fast"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("pattern,")
    assert "2 banks" in out


def test_cli_sweep_to_file(tmp_path, capsys):
    path = tmp_path / "out.csv"
    code = cli_main(
        ["sweep", "--patterns", "16 vaults", "--types", "ro", "--csv", str(path), "--fast"]
    )
    assert code == 0
    assert path.exists()
    assert "wrote" in capsys.readouterr().out


def test_cli_campaign_accepts_jobs_and_no_cache(tmp_path, capsys):
    output = tmp_path / "report.txt"
    code = cli_main(
        [
            "campaign",
            "--only",
            "table1",
            "table2",
            "--jobs",
            "2",
            "--no-cache",
            "--output",
            str(output),
        ]
    )
    assert code == 0
    text = output.read_text()
    assert "[table1]" in text and "[table2]" in text
    assert "Campaign summary" in capsys.readouterr().out


def test_cli_cache_stats_and_clear(capsys):
    assert cli_main(["cache", "stats"]) == 0
    assert "entries" in capsys.readouterr().out
    assert cli_main(["cache", "clear"]) == 0
    assert "removed" in capsys.readouterr().out


def test_cli_bench_writes_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = cli_main(
        ["bench", "--only", "table1", "table2", "--jobs", "2", "--output", str(out)]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["experiments"] == ["table1", "table2"]
    assert payload["jobs"] == 2
    for key in (
        "cold_serial_s",
        "cold_parallel_s",
        "warm_s",
        "speedup_cold",
        "cold_simulations",
        "warm_simulations",
        "events_per_sec",
    ):
        assert key in payload
    assert "wrote" in capsys.readouterr().out
