"""Tests for the campaign driver and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.core.campaign import run_campaign, run_experiment
from repro.core.experiment import ExperimentSettings

STATIC_IDS = ("table1", "table2", "table3", "fig3")


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------
def test_run_experiment_static():
    outcome = run_experiment("table2")
    assert outcome.passed
    assert "Table II" in outcome.report
    assert outcome.seconds >= 0


def test_run_experiment_simulated(tiny_settings):
    outcome = run_experiment("fig14", tiny_settings)
    assert outcome.passed
    assert "287" in outcome.report or "288" in outcome.report


def test_campaign_subset():
    result = run_campaign(experiment_ids=STATIC_IDS)
    assert result.passed
    assert set(result.outcomes) == set(STATIC_IDS)
    summary = result.summary()
    assert "all claims reproduced" in summary
    full = result.full_report()
    for experiment_id in STATIC_IDS:
        assert f"[{experiment_id}]" in full


def test_campaign_unknown_id_rejected():
    with pytest.raises(KeyError):
        run_campaign(experiment_ids=("fig99",))


def test_campaign_shares_measurement_cache(tiny_settings):
    """fig16 reuses fig7/fig8-style measurements; the second run of the
    same id must be much faster thanks to the memoized measurements."""
    first = run_experiment("fig16", tiny_settings)
    second = run_experiment("fig16", tiny_settings)
    assert second.seconds < first.seconds / 2 + 0.2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "failures" in out


def test_cli_run_static(capsys):
    assert cli_main(["run", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_cli_run_rejects_unknown():
    with pytest.raises(SystemExit):
        cli_main(["run", "fig99"])


def test_cli_campaign_subset_writes_output(tmp_path, capsys):
    output = tmp_path / "report.txt"
    code = cli_main(["campaign", "--only", "table1", "table2", "--output", str(output)])
    assert code == 0
    assert output.exists()
    text = output.read_text()
    assert "[table1]" in text and "[table2]" in text
    assert "Campaign summary" in capsys.readouterr().out


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        cli_main([])


def test_cli_sweep_to_stdout(capsys):
    code = cli_main(["sweep", "--patterns", "2 banks", "--sizes", "32", "--fast"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("pattern,")
    assert "2 banks" in out


def test_cli_sweep_to_file(tmp_path, capsys):
    path = tmp_path / "out.csv"
    code = cli_main(
        ["sweep", "--patterns", "16 vaults", "--types", "ro", "--csv", str(path), "--fast"]
    )
    assert code == 0
    assert path.exists()
    assert "wrote" in capsys.readouterr().out
