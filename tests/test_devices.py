"""Tests for the pluggable memory-device backend registry.

Covers the registry surface (register/resolve/unknown names), the
``device`` field's schema and cache-key round trips, bit-identity of the
``hmc1`` backend against pre-refactor golden results, and a cross-device
smoke of the fig7/fig18 experiment shapes on every built-in backend.
"""

import json
import math
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import schema
from repro.core.cache import cache_key
from repro.core.experiment import ExperimentSettings
from repro.core.patterns import available_pattern_names
from repro.core.sweeps import SweepGrid, run_sweep_detailed
from repro.devices import (
    DeviceProfile,
    MemoryDevice,
    UnknownDeviceError,
    device_names,
    iter_devices,
    register_device,
    resolve_device,
    unregister_device,
)
from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import RequestType
from repro.sim.engine import Simulator

DATA = Path(__file__).parent / "data"

#: Exactly the settings the committed golden baselines were made with.
GOLDEN_SETTINGS = ExperimentSettings(warmup_us=2.0, window_us=10.0)
GOLDEN_GRID = SweepGrid(
    patterns=("8 banks", "1 vault"),
    request_types=(RequestType.READ,),
    payload_bytes=(32,),
)

BUILTIN_NAMES = ("hmc1", "hmc2", "hbm2", "ddr4")


# ---------------------------------------------------------------- registry


def test_builtin_backends_are_registered_in_order():
    names = device_names()
    assert tuple(names[:4]) == BUILTIN_NAMES
    for name, description in iter_devices():
        if name in BUILTIN_NAMES:
            assert description  # `repro devices list` shows these


def test_resolve_memoizes_one_profile_per_name():
    assert resolve_device("hmc1") is resolve_device("hmc1")
    profile = resolve_device("hbm2")
    assert isinstance(profile, DeviceProfile)
    assert profile.name == "hbm2"


def test_unknown_device_error_lists_backends():
    with pytest.raises(UnknownDeviceError) as excinfo:
        resolve_device("sram9000")
    message = str(excinfo.value)
    for name in BUILTIN_NAMES:
        assert name in message


def test_register_resolve_unregister_round_trip():
    probe = resolve_device("hmc1")
    try:
        register_device("testdev", lambda: probe, description="probe")
        assert resolve_device("testdev") is probe
        assert ("testdev", "probe") in list(iter_devices())
    finally:
        unregister_device("testdev")
    with pytest.raises(UnknownDeviceError):
        resolve_device("testdev")


def test_register_decorator_form_and_duplicate_rejection():
    try:

        @register_device("testdev2", description="decorated")
        def make_profile():
            return resolve_device("hmc1")

        assert resolve_device("testdev2").name == "hmc1"
        with pytest.raises(ConfigurationError):
            register_device("testdev2", make_profile)
        with pytest.raises(ConfigurationError):
            register_device("hmc1", make_profile)
    finally:
        unregister_device("testdev2")


def test_profiles_satisfy_the_device_protocol():
    for name in BUILTIN_NAMES:
        device = resolve_device(name).create(Simulator())
        assert isinstance(device, MemoryDevice)
        assert device.config is resolve_device(name).config


def test_profile_apply_retargets_settings():
    settings = GOLDEN_SETTINGS
    for name in BUILTIN_NAMES:
        profile = resolve_device(name)
        applied = profile.apply(settings)
        assert applied.device == name
        assert applied.config is profile.config
        assert applied.calibration is profile.calibration
        assert applied.warmup_us == settings.warmup_us
    # hmc1 is the default: applying it must not change the settings value.
    assert resolve_device("hmc1").apply(settings) == settings


def test_settings_validate_the_device_name():
    for name in BUILTIN_NAMES:
        assert ExperimentSettings(device=name).device == name
    with pytest.raises(UnknownDeviceError):
        ExperimentSettings(device="sram9000")


# ------------------------------------------------- schema and cache keys


def test_schema_device_key_round_trips():
    hbm2 = resolve_device("hbm2").apply(GOLDEN_SETTINGS)
    payload = schema.settings_to_dict(hbm2)
    assert payload["device"] == "hbm2"
    assert schema.settings_from_dict(payload) == hbm2


def test_schema_default_device_stays_byte_identical():
    # hmc1 payloads must not grow a key: pre-registry builds (and their
    # cache entries) decode them, and old payloads without the key
    # decode to the hmc1 default.
    payload = schema.settings_to_dict(GOLDEN_SETTINGS)
    assert "device" not in payload
    assert schema.settings_from_dict(payload).device == "hmc1"


def test_cache_key_depends_on_device():
    def point(settings):
        from repro.core.experiment import MeasurementPoint
        from repro.core.patterns import pattern_by_name

        return MeasurementPoint.for_pattern(
            pattern_by_name("1 bank", settings.config),
            request_type=RequestType.READ,
            payload_bytes=32,
            settings=settings,
        )

    baseline = cache_key(point(GOLDEN_SETTINGS))
    # Same geometry and calibration, different backend name: the key
    # must differ (the ddr4 backend simulates open-page banks).
    retagged = replace(GOLDEN_SETTINGS, device="hmc2")
    assert cache_key(point(retagged)) != baseline


def test_hmc1_cache_keys_match_committed_baseline():
    expected = (DATA / "hmc1_cache_keys.txt").read_text().split()
    from repro.core.experiment import MeasurementPoint
    from repro.core.patterns import pattern_by_name

    keys = [
        cache_key(
            MeasurementPoint.for_pattern(
                pattern_by_name(name, GOLDEN_SETTINGS.config),
                request_type=RequestType.READ,
                payload_bytes=32,
                settings=GOLDEN_SETTINGS,
            )
        )
        for name in GOLDEN_GRID.patterns
    ]
    assert keys == expected


# ------------------------------------------------------ hmc1 bit parity


def test_hmc1_results_match_pre_refactor_golden():
    golden_lines = (DATA / "hmc1_golden_tiny.ndjson").read_text().splitlines()
    detailed = run_sweep_detailed(
        GOLDEN_GRID, GOLDEN_SETTINGS, jobs=1, use_cache=False
    )
    lines = [
        schema.dumps(schema.result_to_dict(point, measurement))
        for point, measurement in detailed
    ]
    assert lines == golden_lines


def test_explicit_hmc1_device_is_bit_identical_to_default():
    applied = resolve_device("hmc1").apply(GOLDEN_SETTINGS)
    default = run_sweep_detailed(
        GOLDEN_GRID, GOLDEN_SETTINGS, jobs=1, use_cache=False
    )
    explicit = run_sweep_detailed(GOLDEN_GRID, applied, jobs=1, use_cache=False)
    for (p0, m0), (p1, m1) in zip(default, explicit):
        assert schema.dumps(schema.point_to_dict(p0)) == schema.dumps(
            schema.point_to_dict(p1)
        )
        assert repr(m0) == repr(m1)


# --------------------------------------------------- cross-device smoke


@pytest.mark.parametrize("name", BUILTIN_NAMES)
def test_fig7_shape_runs_on_every_backend(name):
    from repro.experiments import fig07_pattern_bandwidth as fig07

    settings = resolve_device(name).apply(GOLDEN_SETTINGS)
    results = fig07.run(settings)
    expected = available_pattern_names(settings.config)
    assert tuple(r.pattern for r in results) == expected
    for result in results:
        for request_type in ("ro", "rw", "wo"):
            bandwidth = result.bandwidth_gbs[request_type]
            assert math.isfinite(bandwidth) and bandwidth > 0.0


@pytest.mark.parametrize("name", BUILTIN_NAMES)
def test_fig18_sweep_runs_on_every_backend(name):
    from repro.experiments import fig18_latency_bandwidth as fig18

    # Tiny windows and a one-pattern/one-size slice: this checks the
    # grid machinery runs end to end per backend, not the knee values.
    settings = resolve_device(name).apply(
        ExperimentSettings(warmup_us=1.0, window_us=4.0)
    )
    summaries = fig18.run(settings, sizes=(32,), pattern_names=("1 vault",))
    assert len(summaries) == 1
    summary = summaries[0]
    assert summary.pattern == "1 vault"
    assert len(summary.points) == settings.calibration.gups_ports
    assert summary.knee_bandwidth_gbs > 0.0


def test_ddr4_backend_counts_row_buffer_locality():
    from repro.devices.ddr4 import Ddr4Device
    from repro.fpga.address_gen import AddressingMode
    from repro.fpga.board import AC510Board
    from repro.fpga.gups import PortConfig

    def hit_rate(mode):
        board = AC510Board(device="ddr4")
        assert isinstance(board.device, Ddr4Device)
        gups = board.load_gups(
            PortConfig(
                request_type=RequestType.READ, payload_bytes=128, mode=mode
            ),
            active_ports=1,  # one stream; more would thrash the row buffer
        )
        gups.start()
        board.sim.run(until=12_000.0)
        gups.stop()
        stats = board.device.row_buffer_stats()
        assert stats["row_hits"] + stats["row_misses"] + stats["row_empties"] > 0
        return stats["hit_rate"]

    # A linear stream fills each 1 KB row before moving on (7 of 8
    # accesses hit); random traffic opens a fresh row almost every time -
    # the paper's open-vs-closed-page contrast.
    assert hit_rate(AddressingMode.LINEAR) > 0.7
    assert hit_rate(AddressingMode.RANDOM) < 0.2


def test_json_wire_payload_carries_device(tmp_path):
    hbm2 = resolve_device("hbm2").apply(GOLDEN_SETTINGS)
    detailed = run_sweep_detailed(
        SweepGrid(patterns=("1 vault",), payload_bytes=(32,)),
        hbm2,
        jobs=1,
        use_cache=False,
    )
    line = schema.dumps(schema.result_to_dict(*detailed[0]))
    assert json.loads(line)["point"]["settings"]["device"] == "hbm2"
