"""The ``repro trace`` subcommand and the ``--trace`` run/sweep flags."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.core.experiment import ExperimentSettings


@pytest.fixture(autouse=True)
def _tiny_fast(monkeypatch):
    """Shrink ``--fast`` to the tiny window so CLI runs stay quick."""
    monkeypatch.setattr(
        cli, "FAST_SETTINGS", ExperimentSettings(warmup_us=5.0, window_us=15.0)
    )


def test_trace_run_writes_perfetto_and_agrees(tmp_path, capsys):
    out = tmp_path / "trace.json"
    spans = tmp_path / "spans.ndjson"
    code = cli.main(
        [
            "trace",
            "run",
            "--fast",
            "--sample",
            "2",
            "--out",
            str(out),
            "--spans",
            str(spans),
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "AGREES" in captured
    assert "latency deconstruction" in captured
    document = json.loads(out.read_text())
    assert document["displayTimeUnit"] == "ns"
    assert any(event["ph"] == "X" for event in document["traceEvents"])
    assert spans.read_text().startswith("{")


def test_trace_export_renders_report_from_spans(tmp_path, capsys):
    spans = tmp_path / "spans.ndjson"
    assert (
        cli.main(
            [
                "trace",
                "run",
                "--fast",
                "--no-validate",
                "--out",
                str(tmp_path / "t.json"),
                "--spans",
                str(spans),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert cli.main(["trace", "export", str(spans), "--format", "report"]) == 0
    assert "latency deconstruction" in capsys.readouterr().out


def test_sweep_trace_flag_writes_a_trace(tmp_path, capsys):
    out = tmp_path / "sweep_trace.json"
    code = cli.main(
        [
            "sweep",
            "--patterns",
            "16 vaults",
            "--fast",
            "--trace",
            str(out),
            "--trace-sample",
            "4",
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert f"wrote {out}" in captured
    document = json.loads(out.read_text())
    assert any(event["ph"] == "X" for event in document["traceEvents"])


def test_untraced_run_leaves_sampling_off(capsys):
    """After a --trace command finishes, process-wide tracing is off."""
    from repro.obs import trace as obs_trace

    assert obs_trace.active_sample() is None
    assert obs_trace.drain_finished() == []
