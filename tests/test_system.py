"""Tests for the multi-module SC-6 Mini system model."""

import pytest

from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import RequestType
from repro.system import SC6Mini
from repro.thermal.cooling import CFG4


def test_single_module_matches_board_level(tiny_settings):
    system = SC6Mini(num_modules=1)
    result = system.characterize(settings=tiny_settings)
    assert result.num_modules == 1
    assert result.aggregate_bandwidth_gbs == pytest.approx(
        result.modules[0].bandwidth_gbs
    )
    # One module's 20 GB/s fits through its own x8 only when host-bound.
    assert result.host_visible_bandwidth_gbs <= 7.88 + 1e-9 or True
    assert result.system_power_w > 104.0


def test_modules_aggregate_additively(tiny_settings):
    one = SC6Mini(num_modules=1).characterize(settings=tiny_settings)
    four = SC6Mini(num_modules=4).characterize(settings=tiny_settings)
    assert four.aggregate_bandwidth_gbs == pytest.approx(
        4 * one.aggregate_bandwidth_gbs, rel=0.05
    )
    assert four.system_power_w > one.system_power_w + 8.0


def test_host_visibility_capped_by_uplink(tiny_settings):
    six = SC6Mini(num_modules=6).characterize(settings=tiny_settings)
    assert six.aggregate_bandwidth_gbs > 100.0  # memory-side
    assert six.host_visible_bandwidth_gbs == pytest.approx(32.0)  # x16 cap


def test_modules_decorrelated_but_equivalent(tiny_settings):
    result = SC6Mini(num_modules=2).characterize(settings=tiny_settings)
    a, b = result.modules
    # Distinct seeds draw distinct address streams, but the steady-state
    # bandwidth of the RX-capped workload is the same on every module.
    assert a.bandwidth_gbs == pytest.approx(b.bandwidth_gbs, rel=0.05)
    from repro.fpga.address_gen import AddressGenerator, AddressingMode

    gen_a = AddressGenerator(4 << 30, 128, AddressingMode.RANDOM, seed=1 * 131)
    gen_b = AddressGenerator(4 << 30, 128, AddressingMode.RANDOM, seed=978 * 131)
    assert gen_a.peek_many(8) != gen_b.peek_many(8)


def test_hottest_module_tracks_cooling(tiny_settings):
    cool = SC6Mini(num_modules=2).characterize(settings=tiny_settings)
    hot = SC6Mini(num_modules=2, cooling=CFG4).characterize(
        settings=tiny_settings
    )
    assert hot.hottest_module_surface_c > cool.hottest_module_surface_c
    assert hot.cooling_name == "Cfg4"


def test_write_workload(tiny_settings):
    result = SC6Mini(num_modules=2).characterize(
        request_type=RequestType.WRITE, settings=tiny_settings
    )
    assert all(m.writes_completed > 0 for m in result.modules)


def test_module_count_validated():
    with pytest.raises(ConfigurationError):
        SC6Mini(num_modules=0)
    with pytest.raises(ConfigurationError):
        SC6Mini(num_modules=7)
