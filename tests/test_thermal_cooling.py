"""Tests for the cooling configurations (Table III)."""

import pytest

from repro.hmc.errors import ConfigurationError
from repro.thermal.cooling import (
    ALL_CONFIGS,
    CFG1,
    CFG2,
    CFG3,
    CFG4,
    CoolingConfig,
    external_fan_effective_w,
)


def test_table_iii_values():
    assert CFG1.fan_voltage_v == 12.0 and CFG1.fan_current_a == 0.36
    assert CFG2.idle_surface_c == 51.7
    assert CFG3.fan_distance_cm == 90.0
    assert CFG4.idle_surface_c == 71.6


def test_idle_temperature_orders_with_cooling_strength():
    temps = [cfg.idle_surface_c for cfg in ALL_CONFIGS]
    assert temps == sorted(temps)


def test_cooling_power_matches_paper_derivation():
    """SIV-C: 19.32, 15.9, 13.9 and 10.78 W for Cfg1-4."""
    assert CFG1.cooling_power_w == pytest.approx(19.32, abs=0.01)
    assert CFG2.cooling_power_w == pytest.approx(15.90, abs=0.01)
    assert CFG3.cooling_power_w == pytest.approx(13.90, abs=0.02)
    assert CFG4.cooling_power_w == pytest.approx(10.78, abs=0.01)


def test_backplane_fan_power_is_v_times_i():
    assert CFG1.backplane_fan_w == pytest.approx(4.32)
    assert CFG4.backplane_fan_w == pytest.approx(0.78)


def test_external_fan_decays_with_distance():
    assert external_fan_effective_w(45) == pytest.approx(15.0)
    assert external_fan_effective_w(90) == pytest.approx(13.0)
    assert external_fan_effective_w(135) == pytest.approx(10.0)
    # Interpolated + clamped behaviour.
    assert 13.0 < external_fan_effective_w(60) < 15.0
    assert external_fan_effective_w(30) == pytest.approx(15.0)
    assert external_fan_effective_w(200) == pytest.approx(10.0)


def test_external_fan_rejects_nonpositive_distance():
    with pytest.raises(ConfigurationError):
        external_fan_effective_w(0)


def test_thermal_resistance_rises_as_cooling_weakens():
    resistances = [cfg.thermal_resistance_c_per_w for cfg in ALL_CONFIGS]
    assert resistances == sorted(resistances)


def test_validation():
    with pytest.raises(ConfigurationError):
        CoolingConfig("bad", 12.0, 0.3, 45.0, -1.0, 1.0)
    with pytest.raises(ConfigurationError):
        CoolingConfig("bad", 12.0, 0.3, 45.0, 40.0, 0.0)
