"""Tests for trace serialization."""

import pytest

from repro.hmc.errors import ConfigurationError
from repro.workloads.io import load_trace, save_trace
from repro.workloads.kernels import hash_table_updates, pointer_chase, streaming


@pytest.mark.parametrize(
    "trace_factory",
    [
        lambda: streaming(50),
        lambda: pointer_chase(20),
        lambda: hash_table_updates(15),
    ],
)
def test_roundtrip(tmp_path, trace_factory):
    trace = trace_factory()
    path = tmp_path / "trace.txt"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == trace.name
    assert loaded.payload_bytes == trace.payload_bytes
    assert loaded.entries == trace.entries


def test_format_is_human_readable(tmp_path):
    path = tmp_path / "trace.txt"
    save_trace(hash_table_updates(2), path)
    text = path.read_text()
    assert text.startswith("# repro-trace v1\n")
    assert "payload_bytes: 16" in text
    assert " w dep=" in text  # writes depend on their reads


def test_hand_written_trace_loads(tmp_path):
    path = tmp_path / "hand.txt"
    path.write_text(
        "# repro-trace v1\n"
        "name: custom\n"
        "payload_bytes: 64\n"
        "# comment and blank lines are fine\n"
        "\n"
        "0x1000 r\n"
        "0x2000 w dep=0\n"
    )
    trace = load_trace(path)
    assert len(trace) == 2
    assert trace.entries[1].depends_on == 0
    assert trace.entries[1].is_write


def test_bad_files_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("not a trace\n")
    with pytest.raises(ConfigurationError):
        load_trace(path)
    path.write_text("# repro-trace v1\nname: x\npayload_bytes: 16\n0x10 q\n")
    with pytest.raises(ConfigurationError):
        load_trace(path)
    path.write_text("# repro-trace v1\nname: x\npayload_bytes: 16\nzzz r\n")
    with pytest.raises(ConfigurationError):
        load_trace(path)
    path.write_text("# repro-trace v1\n0x10 r\n")
    with pytest.raises(ConfigurationError):
        load_trace(path)
    path.write_text("# repro-trace v1\nname: x\npayload_bytes: 16\n0x10 r foo=1\n")
    with pytest.raises(ConfigurationError):
        load_trace(path)


def test_loaded_trace_replays(tmp_path):
    from repro.workloads.replay import replay_trace

    path = tmp_path / "trace.txt"
    save_trace(streaming(30), path)
    result = replay_trace(load_trace(path))
    assert result.references == 30
