"""Tests for the linear-fit helper, incl. properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core.regression import LinearFit

coeffs = st.floats(min_value=-100, max_value=100, allow_nan=False)


def test_perfect_line_recovered():
    fit = LinearFit.fit([0, 1, 2, 3], [1, 3, 5, 7])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.n == 4


def test_predict_and_solve_are_inverses():
    fit = LinearFit.fit([0, 10], [5, 25])
    assert fit.predict(5.0) == pytest.approx(15.0)
    assert fit.solve_x(15.0) == pytest.approx(5.0)


def test_rise_over():
    fit = LinearFit.fit([0, 1], [0, 0.2])
    assert fit.rise_over(5.0, 20.0) == pytest.approx(3.0)


def test_noisy_fit_r_squared_below_one():
    fit = LinearFit.fit([0, 1, 2, 3], [0.0, 1.2, 1.8, 3.1])
    assert 0.9 < fit.r_squared < 1.0


def test_flat_fit_cannot_invert():
    fit = LinearFit.fit([0, 1, 2], [5, 5, 5])
    with pytest.raises(ZeroDivisionError):
        fit.solve_x(7.0)


def test_validation():
    with pytest.raises(ValueError):
        LinearFit.fit([1], [2])
    with pytest.raises(ValueError):
        LinearFit.fit([1, 2], [1])
    with pytest.raises(ValueError):
        LinearFit.fit([2, 2, 2], [1, 2, 3])


def test_constant_y_has_perfect_r_squared():
    fit = LinearFit.fit([0, 1, 2], [4, 4, 4])
    assert fit.slope == pytest.approx(0.0, abs=1e-12)
    assert fit.r_squared == pytest.approx(1.0)


@given(coeffs, coeffs)
def test_exact_lines_always_recovered(slope, intercept):
    xs = [0.0, 1.0, 2.5, 7.0]
    ys = [slope * x + intercept for x in xs]
    fit = LinearFit.fit(xs, ys)
    assert fit.slope == pytest.approx(slope, abs=1e-6)
    assert fit.intercept == pytest.approx(intercept, abs=1e-6)


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=20))
def test_r_squared_bounded(ys):
    xs = list(range(len(ys)))
    fit = LinearFit.fit(xs, ys)
    assert fit.r_squared <= 1.0 + 1e-9


def test_fit_indexed_matches_explicit_indices():
    ys = [3.0, 5.0, 7.0, 9.0]
    indexed = LinearFit.fit_indexed(ys)
    explicit = LinearFit.fit(range(len(ys)), ys)
    assert indexed == explicit
    assert indexed.slope == pytest.approx(2.0)
    assert indexed.intercept == pytest.approx(3.0)
