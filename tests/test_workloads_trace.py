"""Tests for trace construction, kernels and footprint statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMC_1_1_4GB
from repro.hmc.errors import ConfigurationError
from repro.workloads.kernels import (
    graph_traversal,
    hash_table_updates,
    pointer_chase,
    stencil_2d,
    streaming,
    strided,
)
from repro.workloads.trace import Trace, TraceEntry, TraceStats

MAPPING = AddressMapping(HMC_1_1_4GB)


# ----------------------------------------------------------------------
# Trace validation
# ----------------------------------------------------------------------
def test_trace_rejects_bad_payload():
    with pytest.raises(ConfigurationError):
        Trace(name="x", payload_bytes=100, entries=(TraceEntry(0),))


def test_trace_rejects_forward_dependency():
    with pytest.raises(ConfigurationError):
        Trace(
            name="x",
            payload_bytes=16,
            entries=(TraceEntry(0, depends_on=0),),
        )
    with pytest.raises(ConfigurationError):
        Trace(
            name="x",
            payload_bytes=16,
            entries=(TraceEntry(0), TraceEntry(16, depends_on=5)),
        )


def test_trace_write_fraction_and_flags():
    trace = Trace(
        name="x",
        payload_bytes=16,
        entries=(TraceEntry(0), TraceEntry(16, is_write=True)),
    )
    assert trace.write_fraction == 0.5
    assert not trace.has_dependencies
    assert len(trace) == 2


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def test_streaming_covers_all_vaults():
    stats = streaming(512).stats()
    assert stats.vaults_touched == 16
    assert stats.vault_imbalance == pytest.approx(1.0, abs=0.05)
    assert stats.write_fraction == 0.0


def test_streaming_addresses_sequential():
    trace = streaming(4, payload_bytes=128, start=1024)
    assert [e.address for e in trace.entries] == [1024, 1152, 1280, 1408]


def test_strided_vault_aliasing():
    """A 2 KB stride walks rows of one vault: the SII-C layout hazard."""
    stats = strided(256, 2048).stats()
    assert stats.vaults_touched == 1


def test_strided_rejects_bad_stride():
    with pytest.raises(ConfigurationError):
        strided(10, 0)


def test_stencil_shape():
    trace = stencil_2d(16, 64)
    stats = trace.stats()
    assert 0.1 < trace.write_fraction < 0.25  # one write per 5 reads
    assert stats.vaults_touched > 4


def test_stencil_validation():
    with pytest.raises(ConfigurationError):
        stencil_2d(2, 2)


def test_pointer_chase_fully_dependent():
    trace = pointer_chase(64)
    assert trace.has_dependencies
    stats = trace.stats()
    assert stats.dependent_fraction == pytest.approx(63 / 64)
    assert stats.pattern_class() == "latency-bound (dependent chain)"


def test_pointer_chase_working_set_bound():
    with pytest.raises(ConfigurationError):
        pointer_chase(4, working_set_bytes=8 << 30)


def test_hash_updates_read_write_pairs():
    trace = hash_table_updates(10)
    assert len(trace) == 20
    assert trace.write_fraction == 0.5
    for i in range(0, 20, 2):
        read, write = trace.entries[i], trace.entries[i + 1]
        assert not read.is_write and write.is_write
        assert write.address == read.address
        assert write.depends_on == i


def test_graph_traversal_skew_concentrates_rows():
    flat = graph_traversal(2000, skew=0.1, seed=5).stats()
    skewed = graph_traversal(2000, skew=3.0, seed=5).stats()
    assert skewed.rows_touched < flat.rows_touched


def test_graph_traversal_validation():
    with pytest.raises(ConfigurationError):
        graph_traversal(10, skew=0.0)


def test_kernels_deterministic():
    a = graph_traversal(100, seed=9)
    b = graph_traversal(100, seed=9)
    assert a.entries == b.entries


# ----------------------------------------------------------------------
# TraceStats
# ----------------------------------------------------------------------
def test_stats_row_reuse_detected():
    base = MAPPING.encode(0, 0)  # one bank; row holds 2 x 128 B blocks
    trace = Trace(
        name="x",
        payload_bytes=128,
        entries=tuple(TraceEntry(base) for _ in range(4)),
    )
    stats = trace.stats()
    assert stats.row_reuse == pytest.approx(0.75)
    assert stats.banks_touched == 1


def test_stats_empty_trace():
    # Construct directly: kernels never emit empty traces.
    trace = Trace(name="x", payload_bytes=16, entries=())
    stats = trace.stats()
    assert stats.references == 0
    assert stats.vault_imbalance == 0.0


def test_pattern_class_hot_vaults():
    # 90% of traffic on vault 0, the rest spread: a hot-vault profile.
    entries = [TraceEntry(MAPPING.encode(0, 0, upper=i)) for i in range(90)]
    entries += [TraceEntry(MAPPING.encode(v, 0)) for v in range(1, 11)]
    stats = Trace(name="x", payload_bytes=16, entries=tuple(entries)).stats()
    assert stats.pattern_class() == "skewed: hot vaults"


payload_sizes = st.sampled_from((16, 32, 64, 128))


@given(payload_sizes, st.integers(min_value=1, max_value=64))
def test_streaming_stats_invariants(payload, count):
    stats = streaming(count, payload_bytes=payload).stats()
    assert stats.references == count
    assert 1 <= stats.vaults_touched <= 16
    assert stats.banks_touched >= stats.vaults_touched
    assert stats.rows_touched <= stats.references
