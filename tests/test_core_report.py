"""Tests for the text-report rendering."""

import pytest

from repro.core.report import paper_vs_measured, render_series, render_table


def test_table_alignment_and_title():
    text = render_table(("a", "bbb"), [[1, 2], [33, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows same width


def test_table_float_formatting():
    text = render_table(("x",), [[1.5], [2.0], [float("nan")], [12345.6]])
    assert "1.5" in text
    assert "2" in text
    assert "-" in text  # NaN cell
    assert "12,346" in text


def test_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(("a", "b"), [[1]])


def test_series_layout():
    text = render_series("x", [1, 2], [("s1", [10, 20]), ("s2", [30, 40])])
    lines = text.splitlines()
    assert "s1" in lines[0] and "s2" in lines[0]
    assert "10" in lines[2] and "30" in lines[2]


def test_paper_vs_measured_line():
    line = paper_vs_measured("BW", "22", "20.6", note="raw")
    assert line == "BW: paper=22  measured=20.6  (raw)"
    assert paper_vs_measured("BW", "22", "20.6") == "BW: paper=22  measured=20.6"
