"""Tests for the address mapping (Figure 3, SII-C), incl. properties."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.address import (
    ADDRESS_FIELD_BITS,
    AddressMapping,
    AddressMask,
    OS_PAGE_BYTES,
)
from repro.hmc.config import HMC_1_0, HMC_1_1_4GB
from repro.hmc.errors import AddressRangeError, ConfigurationError

MAPPING = AddressMapping(HMC_1_1_4GB)  # default 128 B max block


# ----------------------------------------------------------------------
# field layout (Figure 3)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "max_block,vault_low,bank_low,bank_end",
    [(128, 7, 11, 15), (64, 6, 10, 14), (32, 5, 9, 13), (16, 4, 8, 12)],
)
def test_field_positions_match_figure_3(max_block, vault_low, bank_low, bank_end):
    mapping = AddressMapping(HMC_1_1_4GB, max_block_bytes=max_block)
    layout = mapping.field_layout()
    assert layout["vault_in_quadrant"][0] == vault_low
    assert layout["bank"] == (bank_low, bank_end)
    assert layout["ignored"] == (0, 4)


def test_invalid_max_block_rejected():
    with pytest.raises(ConfigurationError):
        AddressMapping(HMC_1_1_4GB, max_block_bytes=256)


# ----------------------------------------------------------------------
# decode behaviour
# ----------------------------------------------------------------------
def test_low_order_interleaving_walks_vaults_first():
    """Sequential 128 B blocks spread across the 16 vaults, then banks."""
    vaults = [MAPPING.decode(i * 128).vault for i in range(16)]
    assert vaults == list(range(16))
    assert MAPPING.decode(16 * 128).vault == 0
    assert MAPPING.decode(16 * 128).bank == 1


def test_quadrant_is_high_bits_of_vault_field():
    decoded = MAPPING.decode(5 * 128)
    assert decoded.vault == 5
    assert decoded.quadrant == 1  # vaults 4-7 are quadrant 1
    assert decoded.vault_in_quadrant == 1


def test_high_order_bits_ignored():
    """Bits above device capacity are ignored (34-bit field, 4 GB part)."""
    base = MAPPING.decode(0x1234560)
    aliased = MAPPING.decode(0x1234560 | (3 << 32))
    assert (base.vault, base.bank, base.row) == (aliased.vault, aliased.bank, aliased.row)


def test_address_beyond_field_rejected():
    with pytest.raises(AddressRangeError):
        MAPPING.decode(1 << ADDRESS_FIELD_BITS)
    with pytest.raises(AddressRangeError):
        MAPPING.decode(-1)


addresses = st.integers(min_value=0, max_value=HMC_1_1_4GB.capacity_bytes - 1)


@given(addresses)
def test_decode_fields_in_range(address):
    decoded = MAPPING.decode(address)
    assert 0 <= decoded.vault < 16
    assert 0 <= decoded.quadrant < 4
    assert 0 <= decoded.bank < 16
    assert 0 <= decoded.block_offset < 128
    assert 0 <= decoded.row < HMC_1_1_4GB.rows_per_bank


@given(addresses)
def test_decode_encode_roundtrip(address):
    decoded = MAPPING.decode(address)
    rebuilt = MAPPING.encode(
        decoded.vault,
        decoded.bank,
        upper=address >> MAPPING.row_low,
        block_offset=decoded.block_offset,
    )
    assert rebuilt == address


@given(addresses)
def test_same_max_block_same_bank_and_row(address):
    """All bytes of one max block live in the same vault/bank/row."""
    base = address & ~127
    first = MAPPING.decode(base)
    last = MAPPING.decode(base + 127)
    assert (first.vault, first.bank, first.row) == (last.vault, last.bank, last.row)


def test_encode_rejects_out_of_range():
    with pytest.raises(AddressRangeError):
        MAPPING.encode(16, 0)
    with pytest.raises(AddressRangeError):
        MAPPING.encode(0, 16)
    with pytest.raises(AddressRangeError):
        MAPPING.encode(0, 0, block_offset=128)


# ----------------------------------------------------------------------
# page-level abstractions (SII-C)
# ----------------------------------------------------------------------
def test_os_page_spans_two_banks_in_every_vault():
    vaults, banks = MAPPING.page_footprint(0)
    assert len(vaults) == 16
    assert len(banks) == 32  # two banks per vault


def test_pages_for_full_blp_is_128():
    assert MAPPING.pages_for_full_blp() == 128


def test_smaller_max_block_raises_page_blp():
    """Reducing max block size spreads a page over more banks (SII-C)."""
    mapping64 = AddressMapping(HMC_1_1_4GB, max_block_bytes=64)
    _, banks = mapping64.page_footprint(0)
    assert len(banks) == 64


def test_gen1_mapping_has_three_bank_bits():
    mapping = AddressMapping(HMC_1_0)
    layout = mapping.field_layout()
    assert layout["bank"][1] - layout["bank"][0] == 3


# ----------------------------------------------------------------------
# masks
# ----------------------------------------------------------------------
def test_mask_clearing_bits():
    mask = AddressMask.clearing_bits(7, 14)
    assert mask.apply(0xFFFF) == 0xFFFF & ~0x7F80


def test_paper_mask_7_14_forces_bank0_vault0():
    mask = AddressMask.clearing_bits(7, 14)
    for address in (0x12345678, 0xFEDCBA0, 0x7FFFFF0):
        decoded = MAPPING.decode(mask.apply(address))
        assert decoded.vault == 0
        assert decoded.quadrant == 0
        assert decoded.bank == 0


def test_anti_mask_sets_bits():
    mask = AddressMask(set=1 << 7)
    assert MAPPING.decode(mask.apply(0)).vault == 1


def test_mask_overlap_rejected():
    with pytest.raises(ConfigurationError):
        AddressMask(clear=0b1100, set=0b0100)


def test_mask_identity():
    assert AddressMask().is_identity
    assert not AddressMask(clear=1).is_identity


@given(addresses, st.integers(min_value=0, max_value=25))
def test_clear_mask_is_idempotent(address, low):
    mask = AddressMask.clearing_bits(low, low + 7)
    once = mask.apply(address)
    assert mask.apply(once) == once


# ----------------------------------------------------------------------
# interleave fine-tuning (SII-C "the user may fine-tune the mapping")
# ----------------------------------------------------------------------
def test_bank_first_interleave_swaps_fields():
    mapping = AddressMapping(HMC_1_1_4GB, interleave="bank-first")
    layout = mapping.field_layout()
    assert layout["bank"] == (7, 11)
    assert layout["vault_in_quadrant"][0] == 11


def test_bank_first_page_confined_to_two_vaults():
    mapping = AddressMapping(HMC_1_1_4GB, interleave="bank-first")
    vaults, banks = mapping.page_footprint(0)
    assert len(vaults) == 2
    assert len(banks) == 32


def test_bank_first_sequential_blocks_walk_banks_first():
    mapping = AddressMapping(HMC_1_1_4GB, interleave="bank-first")
    first = [mapping.decode(i * 128) for i in range(16)]
    assert [d.bank for d in first] == list(range(16))
    assert all(d.vault == 0 for d in first)
    assert mapping.decode(16 * 128).vault == 1


@given(addresses)
def test_bank_first_roundtrip(address):
    mapping = AddressMapping(HMC_1_1_4GB, interleave="bank-first")
    decoded = mapping.decode(address)
    rebuilt = mapping.encode(
        decoded.vault,
        decoded.bank,
        upper=address >> mapping.row_low,
        block_offset=decoded.block_offset,
    )
    assert rebuilt == address


def test_invalid_interleave_rejected():
    with pytest.raises(ConfigurationError):
        AddressMapping(HMC_1_1_4GB, interleave="row-first")
