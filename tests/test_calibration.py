"""Tests for the calibration constants and their paper-pinned values."""

import pytest

from repro.hmc.calibration import Calibration, DEFAULT_CALIBRATION


def test_fpga_cycle_time():
    assert DEFAULT_CALIBRATION.fpga_cycle_ns == pytest.approx(1e3 / 187.5)


def test_tx_pipeline_is_54_cycles_for_128b():
    """Fig. 14: up to 54 cycles / ~287 ns for a 128 B (9-flit) request."""
    cal = DEFAULT_CALIBRATION
    ns = cal.tx_pipeline_ns(9)
    assert ns == pytest.approx(54 * cal.fpga_cycle_ns)
    assert abs(ns - 287.0) < 2.0


def test_tx_pipeline_scales_with_flits():
    cal = DEFAULT_CALIBRATION
    assert cal.tx_pipeline_ns(1) < cal.tx_pipeline_ns(9)


def test_rx_pipeline_260ns_for_small_response():
    """SIV-E1: ~260 ns on the RX path for a (small) packet."""
    assert DEFAULT_CALIBRATION.rx_pipeline_ns(2) == pytest.approx(260.0)


def test_infrastructure_latency_547ns():
    """TX (287) + RX (260) = 547 ns of infrastructure latency."""
    cal = DEFAULT_CALIBRATION
    assert cal.tx_pipeline_ns(9) + cal.rx_pipeline_ns(2) == pytest.approx(547.0, abs=2.0)


def test_max_outstanding_reads():
    assert DEFAULT_CALIBRATION.max_outstanding_reads == 9 * 64


def test_paper_pinned_values():
    cal = DEFAULT_CALIBRATION
    assert cal.gups_ports == 9
    assert cal.read_tag_pool_depth == 64
    assert cal.vault_bandwidth_gbps == 10.0
    assert cal.read_failure_surface_c == 85.0
    assert cal.write_failure_surface_c == 75.0
    assert cal.system_idle_w == 100.0
    assert cal.camera_resolution_c == 0.1


def test_calibration_is_frozen_and_hashable():
    cal = Calibration()
    with pytest.raises(AttributeError):
        cal.gups_ports = 10  # type: ignore[misc]
    assert hash(cal) == hash(Calibration())


def test_calibration_override():
    from dataclasses import replace

    cal = replace(Calibration(), vault_bandwidth_gbps=20.0)
    assert cal.vault_bandwidth_gbps == 20.0
    assert cal != DEFAULT_CALIBRATION
