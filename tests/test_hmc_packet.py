"""Tests for the packet/flit model (Table II)."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.packet import (
    FLIT_BYTES,
    Request,
    RequestType,
    VALID_PAYLOAD_BYTES,
    effective_bandwidth_fraction,
    flits_for_payload,
    packet_bytes,
    request_flits,
    response_flits,
    table_ii,
    transaction_raw_bytes,
)


def test_flits_for_payload_boundaries():
    assert flits_for_payload(16) == 1
    assert flits_for_payload(17) == 2
    assert flits_for_payload(128) == 8
    assert flits_for_payload(0) == 0


def test_flits_for_payload_rejects_oversize():
    with pytest.raises(ValueError):
        flits_for_payload(129)
    with pytest.raises(ValueError):
        flits_for_payload(-1)


def test_table_ii_matches_paper():
    assert table_ii() == {
        "Read": {"Request": (1, 1), "Response": (2, 9)},
        "Write": {"Request": (2, 9), "Response": (1, 1)},
    }


@given(st.sampled_from(VALID_PAYLOAD_BYTES))
def test_read_and_write_transactions_are_duals(payload):
    """A read moves the same wire bytes as a write of the same payload."""
    assert transaction_raw_bytes(False, payload) == transaction_raw_bytes(True, payload)
    assert request_flits(False, payload) == response_flits(True, payload)
    assert response_flits(False, payload) == request_flits(True, payload)


@given(st.sampled_from(VALID_PAYLOAD_BYTES))
def test_overhead_is_exactly_two_flits_per_transaction(payload):
    raw = transaction_raw_bytes(False, payload)
    assert raw == payload + 2 * FLIT_BYTES


def test_effective_bandwidth_fractions():
    """Paper SIV-D: 89% at 128 B, 50% at 16 B."""
    assert effective_bandwidth_fraction(128) == pytest.approx(128 / 144)
    assert effective_bandwidth_fraction(16) == pytest.approx(0.5)


def test_request_type_labels():
    assert RequestType.from_label("ro") is RequestType.READ
    assert RequestType.from_label("wo") is RequestType.WRITE
    assert RequestType.from_label("rw") is RequestType.READ_MODIFY_WRITE
    with pytest.raises(ValueError):
        RequestType.from_label("xx")


def test_request_type_read_write_flags():
    assert RequestType.READ.reads and not RequestType.READ.writes
    assert RequestType.WRITE.writes and not RequestType.WRITE.reads
    assert RequestType.READ_MODIFY_WRITE.reads and RequestType.READ_MODIFY_WRITE.writes


def test_request_object_flit_accounting():
    read = Request(address=0, payload_bytes=128, is_write=False, port=0)
    assert read.request_flits == 1
    assert read.response_flits == 9
    assert read.raw_bytes == 160
    write = Request(address=0, payload_bytes=64, is_write=True, port=0)
    assert write.request_flits == 5
    assert write.response_flits == 1
    assert write.raw_bytes == 96


def test_request_rejects_invalid_payload():
    with pytest.raises(ValueError):
        Request(address=0, payload_bytes=100, is_write=False, port=0)


def test_request_latency_requires_completion():
    request = Request(address=0, payload_bytes=16, is_write=False, port=0)
    with pytest.raises(ValueError):
        _ = request.latency_ns
    request.submit_ns = 10.0
    request.complete_ns = 25.0
    assert request.latency_ns == pytest.approx(15.0)


def test_packet_bytes():
    assert packet_bytes(9) == 144
