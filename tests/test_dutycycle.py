"""Tests for the duty-cycle thermal-management model."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import RequestType
from repro.thermal.cooling import CFG1, CFG4
from repro.thermal.dutycycle import DutyCycleModel

# wo at full bandwidth under the weakest cooling: unsafe when sustained.
HOT = DutyCycleModel(CFG4, RequestType.WRITE, 14.5)
SAFE = DutyCycleModel(CFG1, RequestType.READ, 20.6)

duties = st.floats(min_value=0.05, max_value=0.95)
periods = st.floats(min_value=1.0, max_value=600.0)


def test_sustained_operation_matches_thermal_model():
    outcome = HOT.steady_state(duty=1.0, period_s=60.0)
    assert outcome.peak_surface_c == pytest.approx(HOT.active_steady_c, abs=0.5)
    assert not outcome.thermally_safe


def test_idle_operation_stays_at_idle():
    outcome = HOT.steady_state(duty=0.0, period_s=60.0)
    assert outcome.peak_surface_c == pytest.approx(CFG4.idle_surface_c, abs=0.2)
    assert outcome.average_bandwidth_gbs == 0.0


def test_duty_cycling_tames_an_unsafe_workload():
    """Cfg4 idles at 71.6 degC against a 75 degC write bound, so only a
    small duty factor fits - but it exists, where sustained writes fail."""
    sustained = HOT.steady_state(1.0, 60.0)
    bursty = HOT.steady_state(0.1, 10.0)
    assert not sustained.thermally_safe
    assert bursty.thermally_safe
    assert bursty.peak_surface_c < sustained.peak_surface_c
    assert bursty.average_bandwidth_gbs == pytest.approx(14.5 * 0.1)


@given(duties, periods)
def test_peak_bounded_by_extremes(duty, period):
    outcome = HOT.steady_state(duty, period)
    assert CFG4.idle_surface_c - 0.01 <= outcome.peak_surface_c
    assert outcome.peak_surface_c <= HOT.active_steady_c + 0.01
    assert outcome.trough_surface_c <= outcome.peak_surface_c + 1e-9


@given(periods)
def test_peak_monotone_in_duty(period):
    peaks = [HOT.steady_state(d, period).peak_surface_c for d in (0.2, 0.5, 0.8)]
    assert peaks[0] <= peaks[1] + 1e-6 <= peaks[2] + 2e-6


def test_short_periods_average_the_power():
    """Fast switching smooths the swing; slow switching rides to peaks."""
    fast = HOT.steady_state(0.5, 0.5)
    slow = HOT.steady_state(0.5, 300.0)
    assert fast.swing_c < slow.swing_c
    assert fast.peak_surface_c < slow.peak_surface_c


def test_max_safe_duty_for_safe_workload_is_one():
    assert SAFE.max_safe_duty(period_s=10.0) == 1.0


def test_max_safe_duty_binds_for_hot_workload():
    duty = HOT.max_safe_duty(period_s=10.0)
    assert 0.0 < duty < 1.0
    outcome = HOT.steady_state(duty, 10.0)
    assert outcome.thermally_safe
    hotter = HOT.steady_state(min(1.0, duty + 0.1), 10.0)
    assert hotter.peak_surface_c > outcome.peak_surface_c


def test_longer_periods_allow_less_duty():
    short = HOT.max_safe_duty(period_s=2.0)
    long = HOT.max_safe_duty(period_s=200.0)
    assert long < short


def test_trajectory_shape():
    points = HOT.trajectory(duty=0.5, period_s=20.0, cycles=3)
    assert len(points) == 3 * 2 * 8
    times = [t for t, _ in points]
    assert times == sorted(times)
    temps = [c for _, c in points]
    assert max(temps) <= HOT.active_steady_c + 1e-6
    assert min(temps) >= CFG4.idle_surface_c - 1e-6


def test_validation():
    with pytest.raises(ConfigurationError):
        HOT.steady_state(1.5, 10.0)
    with pytest.raises(ConfigurationError):
        HOT.steady_state(0.5, 0.0)
