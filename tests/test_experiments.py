"""Tests for the per-figure experiment modules (fast settings).

Each module's ``check_shape`` encodes the paper's qualitative claims;
these tests assert the checks pass at reduced simulation windows, plus
spot-check structured outputs.
"""

import pytest

from repro.experiments import REGISTRY, load
from repro.experiments import (
    fig06_address_mask,
    fig07_pattern_bandwidth,
    fig08_request_sizes,
    fig11_regression,
    fig13_closed_page,
    fig14_tx_path,
    fig16_high_load,
    failure_limits,
    tab01_properties,
    tab02_packets,
    tab03_cooling,
    fig03_address_map,
)


def test_registry_loads_every_module():
    for experiment_id in REGISTRY:
        module = load(experiment_id)
        assert hasattr(module, "run")
        assert hasattr(module, "main")


def test_registry_rejects_unknown():
    with pytest.raises(KeyError):
        load("fig99")


# ----------------------------------------------------------------------
# static experiments (no simulation)
# ----------------------------------------------------------------------
def test_table1_matches_paper():
    assert tab01_properties.mismatches(tab01_properties.run()) == []


def test_table2_matches_paper():
    assert tab02_packets.matches_paper(tab02_packets.run())


def test_table3_cooling_powers_match():
    assert tab03_cooling.cooling_power_errors() == []


def test_fig3_field_positions_match():
    results = fig03_address_map.run()
    assert fig03_address_map.field_position_errors(results) == []
    assert results[128]["pages_for_full_blp"] == 128
    assert results[128]["page_banks"] == 32


# ----------------------------------------------------------------------
# simulation experiments at fast settings
# ----------------------------------------------------------------------
def test_fig6_shape(fast_settings):
    points = fig06_address_mask.run(fast_settings)
    assert fig06_address_mask.check_shape(points) == []
    assert len(points) == 7


def test_fig7_shape(fast_settings):
    results = fig07_pattern_bandwidth.run(fast_settings)
    assert fig07_pattern_bandwidth.check_shape(results) == []
    assert [r.pattern for r in results][0] == "1 bank"


def test_fig8_shape(fast_settings):
    points = fig08_request_sizes.run(fast_settings)
    assert fig08_request_sizes.check_shape(points) == []


def test_fig11_shape(fast_settings):
    results = fig11_regression.run(fast_settings)
    assert fig11_regression.check_shape(results) == []
    assert results["ro"].temperature_fit.r_squared > 0.98


def test_fig13_shape(fast_settings):
    groups = fig13_closed_page.run(fast_settings)
    assert fig13_closed_page.check_shape(groups) == []


def test_fig14_budget(fast_settings):
    budget = fig14_tx_path.run(fast_settings)
    assert fig14_tx_path.check_shape(budget) == []
    assert budget.infrastructure_ns == pytest.approx(547.0, abs=3.0)


def test_fig16_shape(fast_settings):
    points = fig16_high_load.run(fast_settings)
    assert fig16_high_load.check_shape(points) == []


def test_failures_matrix(fast_settings):
    matrix = failure_limits.run(fast_settings)
    assert failure_limits.check_shape(matrix) == []
    assert matrix.failures_for("ro") == ()
    assert set(matrix.failures_for("wo")) == {"Cfg3", "Cfg4"}
    assert matrix.failures_for("rw") == ("Cfg4",)
    assert matrix.recovery_seconds > 60


def test_hmc2_projection_shape(fast_settings):
    from repro.experiments import hmc2_projection

    rows = hmc2_projection.run(fast_settings)
    assert hmc2_projection.check_shape(rows) == []
    assert {r.pattern for r in rows} == set(hmc2_projection.PATTERNS)


def test_fig12_shape(fast_settings):
    from repro.experiments import fig12_cooling_power

    panels = fig12_cooling_power.run(fast_settings)
    assert fig12_cooling_power.check_shape(panels) == []
    # wo only has two surviving configs; the fit still inverts.
    wo = next(p for p in panels if p.request_type.value == "wo")
    assert len(wo.lines) == 2


def test_fig15_shape(fast_settings):
    from repro.experiments import fig15_low_load

    panels = fig15_low_load.run(fast_settings, depths=(2, 8, 16, 28), trials=3)
    assert len(panels) == 4
    for panel in panels:
        mins = [r.min_ns for r in panel.results]
        assert max(mins) - min(mins) < 40
        assert panel.results[-1].max_ns > panel.results[0].max_ns


def test_fig17_shape_reduced(fast_settings):
    from repro.core.experiment import run_latency_sweep
    from repro.core.littles_law import LittlesLawAnalysis
    from repro.core.patterns import pattern_by_name

    occupancies = {}
    for pattern_name in ("4 banks", "2 banks"):
        pattern = pattern_by_name(pattern_name)
        for size in (32, 128):
            points = run_latency_sweep(
                pattern, size, settings=fast_settings, port_counts=(1, 2, 4, 9)
            )
            analysis = LittlesLawAnalysis.from_sweep(pattern_name, size, points)
            occupancies[(pattern_name, size)] = analysis.occupancy_requests
    # Size-independent occupancy, 2x per bank doubling (Fig. 17).
    assert occupancies[("4 banks", 32)] == pytest.approx(
        occupancies[("4 banks", 128)], rel=0.2
    )
    ratio = occupancies[("4 banks", 128)] / occupancies[("2 banks", 128)]
    assert 1.5 <= ratio <= 2.5


def test_fig18_shape_reduced(fast_settings):
    from repro.experiments import fig18_latency_bandwidth

    summaries = fig18_latency_bandwidth.run(
        fast_settings,
        sizes=(128,),
        pattern_names=("1 bank", "2 banks", "4 banks", "8 banks", "1 vault", "2 vaults"),
    )
    knees = {s.pattern: s.knee_bandwidth_gbs for s in summaries}
    assert knees["2 banks"] / knees["1 bank"] == pytest.approx(2.0, rel=0.2)
    assert knees["1 vault"] / knees["8 banks"] < 1.15
    assert 1.4 <= knees["2 vaults"] / knees["1 vault"] <= 2.2
