"""Tests for the RC thermal model."""

import math

import pytest
from hypothesis import given, strategies as st

from dataclasses import replace

from repro.hmc.calibration import Calibration
from repro.hmc.errors import ConfigurationError
from repro.thermal.cooling import CFG1, CFG2, CFG4, CoolingConfig
from repro.thermal.model import ThermalModel

powers = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)


def test_zero_power_is_idle_temperature():
    model = ThermalModel(CFG2)
    assert model.steady_surface_c(0.0) == pytest.approx(CFG2.idle_surface_c)


def test_steady_state_monotone_in_power():
    model = ThermalModel(CFG2)
    assert model.steady_surface_c(5.0) > model.steady_surface_c(2.0)


def test_leakage_amplifies_rise():
    """The leakage feedback makes the rise exceed R*P."""
    model = ThermalModel(CFG2)
    raw_rise = CFG2.thermal_resistance_c_per_w * 4.0
    assert model.steady_surface_c(4.0) - CFG2.idle_surface_c > raw_rise


@given(powers)
def test_weaker_cooling_always_hotter(power):
    hot = ThermalModel(CFG4).steady_surface_c(power)
    cold = ThermalModel(CFG1).steady_surface_c(power)
    assert hot > cold


def test_thermal_runaway_rejected():
    runaway = CoolingConfig("melt", 1.0, 0.1, 45.0, 40.0, 11.0)
    with pytest.raises(ConfigurationError):
        ThermalModel(runaway)  # R*k_leak >= 1


def test_negative_power_rejected():
    with pytest.raises(ValueError):
        ThermalModel(CFG1).steady_surface_c(-1.0)


def test_transient_starts_at_idle_and_converges():
    model = ThermalModel(CFG2)
    steady = model.steady_surface_c(5.0)
    assert model.surface_at(0.0, 5.0) == pytest.approx(CFG2.idle_surface_c)
    assert model.surface_at(200.0, 5.0) == pytest.approx(steady, abs=0.2)
    mid = model.surface_at(35.0, 5.0)  # one time constant
    expected = steady + (CFG2.idle_surface_c - steady) * math.exp(-1.0)
    assert mid == pytest.approx(expected)


def test_transient_is_monotone_heating():
    model = ThermalModel(CFG2)
    samples = [model.surface_at(t, 6.0) for t in range(0, 200, 20)]
    assert all(b >= a for a, b in zip(samples, samples[1:]))


def test_200s_settles_the_paper_way():
    """The paper waits 200 s; that is >5 time constants here."""
    model = ThermalModel(CFG2)
    assert model.settle_time_s(0.99) < 200.0


def test_cooldown_from_hot_start():
    model = ThermalModel(CFG2)
    hot = model.steady_surface_c(8.0)
    cooled = model.surface_at(500.0, 0.0, start_surface_c=hot)
    assert cooled == pytest.approx(CFG2.idle_surface_c, abs=0.1)


def test_camera_quantizes_to_tenth_degree():
    model = ThermalModel(CFG2)
    reading = model.camera_reading(200.0, 3.333)
    assert round(reading.surface_c * 10) == pytest.approx(reading.surface_c * 10)
    assert reading.junction_c == pytest.approx(reading.surface_c + 8.0)


def test_junction_offset_from_calibration():
    cal = replace(Calibration(), surface_to_junction_offset_c=5.0)
    model = ThermalModel(CFG1, cal)
    assert model.junction_c(50.0) == pytest.approx(55.0)


def test_leakage_power_positive_only_above_idle():
    model = ThermalModel(CFG2)
    assert model.leakage_power_w(CFG2.idle_surface_c - 5.0) == 0.0
    assert model.leakage_power_w(CFG2.idle_surface_c + 10.0) == pytest.approx(1.0)


def test_settle_time_validation():
    with pytest.raises(ValueError):
        ThermalModel(CFG1).settle_time_s(1.5)
    with pytest.raises(ValueError):
        ThermalModel(CFG1).surface_at(-1.0, 0.0)
