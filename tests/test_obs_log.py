"""Structured NDJSON event logging: levels, targets, env resolution."""

from __future__ import annotations

import json

import pytest

from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _fresh_logger(monkeypatch):
    """Isolate every test from ambient REPRO_LOG* and the cached logger."""
    monkeypatch.delenv(obs_log.LOG_ENV, raising=False)
    monkeypatch.delenv(obs_log.LEVEL_ENV, raising=False)
    monkeypatch.delenv(obs_log.SERVICE_ENV, raising=False)
    obs_log.reset()
    yield
    obs_log.reset()


def _events(path) -> list:
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def test_disabled_by_default_and_full_noop_api():
    logger = obs_log.get_logger("backend")
    assert not logger.enabled
    # Every level helper must be callable without a stream configured.
    logger.debug("a")
    logger.info("b", extra=1)
    logger.warning("c")
    logger.error("d", trace_id="t")


def test_configure_writes_one_json_object_per_event(tmp_path):
    target = tmp_path / "events.ndjson"
    logger = obs_log.configure(target=str(target), service="router")
    logger.info("router_started", port=1234)
    logger.warning("backend_dead", backend="backend-0")
    events = _events(target)
    assert [e["event"] for e in events] == ["router_started", "backend_dead"]
    assert events[0]["service"] == "router"
    assert events[0]["level"] == "info"
    assert events[0]["port"] == 1234
    assert events[1]["level"] == "warning"
    assert isinstance(events[0]["ts"], float)


def test_level_threshold_filters_lower_levels(tmp_path):
    target = tmp_path / "events.ndjson"
    logger = obs_log.configure(
        target=str(target), level="warning", service="s"
    )
    logger.debug("dropped")
    logger.info("dropped too")
    logger.warning("kept")
    logger.error("kept too")
    assert [e["event"] for e in _events(target)] == ["kept", "kept too"]


def test_env_configuration_and_service_name_priority(tmp_path, monkeypatch):
    target = tmp_path / "env.ndjson"
    monkeypatch.setenv(obs_log.LOG_ENV, str(target))
    monkeypatch.setenv(obs_log.SERVICE_ENV, "backend-1")
    obs_log.reset()
    # The env-stamped identity wins over the call-site fallback: a
    # fleet-spawned daemon stays `backend-1` even though server.py
    # asks for the generic "backend".
    logger = obs_log.get_logger("backend")
    logger.info("serve_started")
    assert _events(target)[0]["service"] == "backend-1"


def test_bind_shares_stream_with_new_service(tmp_path):
    target = tmp_path / "bind.ndjson"
    logger = obs_log.configure(target=str(target), service="router")
    logger.bind("manager").info("fleet_up")
    logger.info("router_started")
    events = _events(target)
    assert [(e["service"], e["event"]) for e in events] == [
        ("manager", "fleet_up"),
        ("router", "router_started"),
    ]


def test_trace_id_rides_along_when_given(tmp_path):
    target = tmp_path / "t.ndjson"
    logger = obs_log.configure(target=str(target), service="router")
    logger.warning("slo_breach", trace_id="abc123", backend="backend-0")
    event = _events(target)[0]
    assert event["trace_id"] == "abc123"


def test_unserializable_fields_fall_back_to_str(tmp_path):
    target = tmp_path / "weird.ndjson"
    logger = obs_log.configure(target=str(target), service="s")
    logger.info("odd", payload={1, 2}.__class__)  # a type object
    assert "odd" in target.read_text()
