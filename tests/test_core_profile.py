"""Tests for the per-station utilization profiler."""

import math

import pytest

from repro.analysis.bottleneck import BottleneckModel
from repro.core.experiment import ExperimentSettings
from repro.core.patterns import pattern_by_name
from repro.core.profile import profile_workload
from repro.hmc.packet import RequestType

SETTINGS = ExperimentSettings(warmup_us=10.0, window_us=40.0)


def profile(pattern_name, **kwargs):
    return profile_workload(
        mask=pattern_by_name(pattern_name).mask, settings=SETTINGS, **kwargs
    )


def test_one_bank_is_bank_bound():
    result = profile("1 bank")
    assert "bank" in result.bottleneck.name
    assert result.bottleneck.utilization > 0.75


def test_one_vault_is_vault_bound():
    result = profile("1 vault")
    assert "TSV" in result.bottleneck.name
    assert result.bottleneck.utilization > 0.85


def test_distributed_reads_are_rx_bound():
    result = profile("16 vaults")
    assert "RX" in result.bottleneck.name
    assert result.bottleneck.utilization > 0.9


def test_measured_and_analytic_bottlenecks_agree():
    """The DES profiler and the MVA station model must name the same
    bottleneck class for each pattern."""
    model = BottleneckModel()
    expectations = {
        "2 banks": "banks",
        "1 vault": "vault data bus",
        "16 vaults": "link RX",
    }
    for pattern_name, analytic_name in expectations.items():
        analytic = model.predict(pattern_by_name(pattern_name))
        assert analytic.bottleneck.name == analytic_name
        measured = profile(pattern_name)
        keyword = {"banks": "bank", "vault data bus": "TSV", "link RX": "RX"}[
            analytic_name
        ]
        assert keyword in measured.bottleneck.name


def test_utilizations_bounded_and_detailed():
    result = profile("4 banks")
    for station in result.stations:
        assert 0.0 <= station.utilization <= 1.0
    assert any(s.detail for s in result.stations)
    rows = result.table_rows()
    utils = [float(r[1].rstrip("%")) for r in rows]
    assert utils == sorted(utils, reverse=True)


def test_profile_carries_measurement():
    result = profile("16 vaults")
    assert result.bandwidth_gbs > 15.0
    assert result.mrps > 80.0
    assert not math.isnan(result.read_latency_avg_ns)


def test_write_profile_shows_tx_pressure():
    result = profile("16 vaults", request_type=RequestType.WRITE)
    by_name = {s.name: s for s in result.stations}
    # Writes push nine flits up the TX path: far busier than for reads.
    read_result = profile("16 vaults")
    assert (
        by_name["link0 TX"].utilization
        > {s.name: s for s in read_result.stations}["link0 TX"].utilization * 2
    )


def test_token_low_water_stations_reported_as_pressure_indicators():
    result = profile("16 vaults", payload_bytes=128)
    low_water = [s for s in result.stations if "tokens low-water" in s.name]
    assert low_water, "every link should report a low-water station"
    for station in low_water:
        assert 0.0 <= station.utilization <= 1.0
        assert "flits free" in station.detail
    # Pressure indicators never win bottleneck attribution.
    assert "tokens" not in result.bottleneck.name


def test_saturated_link_shows_token_low_water_pressure():
    # 128B distributed reads saturate the response link; the request
    # path's token pool should run visibly below its full capacity.
    result = profile("16 vaults", payload_bytes=128)
    pressure = max(
        s.utilization for s in result.stations if "tokens low-water" in s.name
    )
    assert pressure > 0.0
