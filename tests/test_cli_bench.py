"""Tests for `repro bench`: regression gating against a committed baseline.

The actual campaign timing loop is exercised end to end by CI's
perf-smoke job; here the expensive part is monkeypatched so the check
logic (floors, tolerance, baseline handling) is testable in
milliseconds.
"""

import json

import pytest

from repro import cli


def _payload(**overrides):
    payload = {
        "experiments": ["fig7"],
        "jobs": 4,
        "settings": "fast",
        "cpu_count": 4,
        "cold_serial_s": 20.0,
        "cold_parallel_s": 8.0,
        "warm_s": 0.05,
        "speedup_cold": 2.5,
        "cold_simulations": 77,
        "warm_simulations": 0,
        "events_simulated": 4_000_000,
        "events_per_sec": 500_000,
    }
    payload.update(overrides)
    return payload


# ----------------------------------------------------------------------
# check_bench verdicts
# ----------------------------------------------------------------------


def test_check_passes_within_tolerance():
    baseline = _payload()
    fresh = _payload(events_per_sec=400_000, speedup_cold=2.0)
    assert cli.check_bench(fresh, baseline, tolerance=0.25) == []


def test_check_flags_events_per_sec_regression():
    baseline = _payload()
    fresh = _payload(events_per_sec=300_000)
    problems = cli.check_bench(fresh, baseline, tolerance=0.25)
    assert len(problems) == 1
    assert "events_per_sec" in problems[0]


def test_check_flags_speedup_regression_on_multicore():
    baseline = _payload()
    fresh = _payload(speedup_cold=1.0)
    problems = cli.check_bench(fresh, baseline, tolerance=0.25)
    assert len(problems) == 1
    assert "speedup_cold" in problems[0]


def test_check_skips_speedup_on_single_core():
    # One core means parallel == serial + overhead by construction; the
    # ratio carries no signal about the code and must not fail the gate.
    baseline = _payload()
    fresh = _payload(speedup_cold=0.9, cpu_count=1)
    assert cli.check_bench(fresh, baseline, tolerance=0.25) == []


# ----------------------------------------------------------------------
# the CLI command around it
# ----------------------------------------------------------------------


@pytest.fixture()
def stub_bench(monkeypatch):
    """Replace the timing loop with a canned payload."""
    result = _payload()
    monkeypatch.setattr(cli, "run_bench", lambda *a, **k: dict(result))
    return result


def _run(args):
    parser = cli.build_parser()
    namespace = parser.parse_args(args)
    return namespace.func(namespace)


def test_bench_writes_output_json(tmp_path, stub_bench, capsys):
    out = tmp_path / "bench.json"
    assert _run(["bench", "--output", str(out)]) == 0
    written = json.loads(out.read_text())
    assert written == stub_bench
    assert "wrote" in capsys.readouterr().out


def test_bench_check_passes_against_equal_baseline(tmp_path, stub_bench):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(stub_bench))
    out = tmp_path / "bench.json"
    assert (
        _run(["bench", "--check", "--baseline", str(baseline), "--output", str(out)])
        == 0
    )


def test_bench_check_fails_on_regression(tmp_path, stub_bench, capsys):
    better = dict(stub_bench, events_per_sec=900_000)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(better))
    out = tmp_path / "bench.json"
    assert (
        _run(["bench", "--check", "--baseline", str(baseline), "--output", str(out)])
        == 1
    )
    assert "FAIL" in capsys.readouterr().out


def test_bench_check_missing_baseline_is_an_error(tmp_path, stub_bench):
    out = tmp_path / "bench.json"
    code = _run(
        ["bench", "--check", "--baseline", str(tmp_path / "nope.json"), "--output", str(out)]
    )
    assert code == 2


def test_bench_check_reads_baseline_before_overwriting_it(tmp_path, stub_bench):
    # Default --baseline and --output are the same path; a regression
    # must still be detected even when the run overwrites the file.
    shared = tmp_path / "BENCH_campaign.json"
    shared.write_text(json.dumps(dict(stub_bench, events_per_sec=900_000)))
    code = _run(
        ["bench", "--check", "--baseline", str(shared), "--output", str(shared)]
    )
    assert code == 1
    assert json.loads(shared.read_text())["events_per_sec"] == stub_bench["events_per_sec"]


def test_bench_absolute_floors(tmp_path, stub_bench):
    out = tmp_path / "bench.json"
    assert (
        _run(["bench", "--output", str(out), "--min-events-per-sec", "400000"]) == 0
    )
    assert (
        _run(["bench", "--output", str(out), "--min-events-per-sec", "600000"]) == 1
    )
    assert _run(["bench", "--output", str(out), "--min-speedup", "3.0"]) == 1


def test_bench_check_mismatched_settings_skips_comparison(tmp_path, stub_bench, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(dict(stub_bench, settings="tiny", events_per_sec=900_000)))
    out = tmp_path / "bench.json"
    assert (
        _run(["bench", "--check", "--baseline", str(baseline), "--output", str(out)])
        == 0
    )
    assert "not comparable" in capsys.readouterr().out


# ----------------------------------------------------------------------
# check_kernel_bench verdicts (the hybrid-kernel acceptance gates)
# ----------------------------------------------------------------------


def _kernel_payload(**overrides):
    payload = {
        "kernel": "batch",
        "settings": "default",
        "suite": [
            {
                "point": "ro128r",
                "kernel_used": "batch",
                "reason": "",
                "parity_errors": {"bandwidth_gbs": 0.0002, "mrps": 0.0002},
                "advance_ratio": 5.33,
            }
        ],
        "worst_parity_error": 0.0007,
        "min_advance_ratio": 5.33,
        "window_wall_speedup": 5.0,
        "profile_agrees": [
            {
                "point": "ro128r",
                "des_bottleneck": "link1 RX",
                "kernel_bottleneck": "link0 RX",
                "agrees": True,
            }
        ],
    }
    payload.update(overrides)
    return payload


def test_kernel_check_passes_when_all_gates_green():
    assert cli.check_kernel_bench(_kernel_payload(), tolerance=0.001) == []


def test_kernel_check_fails_on_parity_breach():
    problems = cli.check_kernel_bench(
        _kernel_payload(worst_parity_error=0.002), tolerance=0.001
    )
    assert any("parity" in p for p in problems)


def test_kernel_check_fails_on_slow_advance_and_fallback():
    payload = _kernel_payload(min_advance_ratio=2.8)
    payload["suite"][0]["kernel_used"] = "des"
    payload["suite"][0]["reason"] = "non-stationary latency spread"
    problems = cli.check_kernel_bench(payload, tolerance=0.001)
    assert any("advance ratio" in p for p in problems)
    assert any("fell back" in p for p in problems)


def test_kernel_check_fails_on_profile_disagreement():
    payload = _kernel_payload()
    payload["profile_agrees"][0]["agrees"] = False
    problems = cli.check_kernel_bench(payload, tolerance=0.001)
    assert any("attribution" in p for p in problems)


def test_parity_errors_are_nan_aware():
    import math
    from types import SimpleNamespace

    def measurement(write_lat):
        return SimpleNamespace(
            bandwidth_gbs=20.0,
            mrps=10.0,
            read_latency_avg_ns=1800.0,
            write_latency_avg_ns=write_lat,
        )

    both_nan = cli._parity_errors(measurement(math.nan), measurement(math.nan))
    assert both_nan["write_latency_avg_ns"] == 0.0
    one_nan = cli._parity_errors(measurement(math.nan), measurement(900.0))
    assert one_nan["write_latency_avg_ns"] == math.inf
