"""Parallel execution must be bit-identical to serial execution.

The executor's contract (and the premise of the content-addressed result
cache) is that a measurement is a pure function of its
:class:`~repro.core.experiment.MeasurementPoint`: the worker pool may
change wall-clock time and completion order, never results.  These tests
run a small slice of the Fig. 7 grid both ways and compare full reprs -
every float, not a tolerance.
"""

from repro.core import parallel
from repro.core.experiment import ExperimentSettings
from repro.core.parallel import MeasurementExecutor
from repro.experiments import load

TINY = ExperimentSettings(warmup_us=2.0, window_us=5.0)


def _fig7_slice(count: int = 8):
    return load("fig7").measurement_points(TINY)[:count]


def test_jobs4_bit_identical_to_jobs1(tmp_path, monkeypatch):
    points = _fig7_slice()

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    parallel.reset()
    serial = MeasurementExecutor(jobs=1).measure_points(points)
    assert parallel.stats().simulations == len(points)
    serial_events = parallel.stats().events_simulated

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel.reset()
    try:
        pooled = MeasurementExecutor(jobs=4).measure_points(points)
        assert parallel.stats().simulations == len(points)
        pooled_events = parallel.stats().events_simulated
    finally:
        parallel.shutdown_pool()
        parallel.reset()

    # Bit-identical measurements AND identical simulated event counts:
    # the cost-aware submission order must not leak into results.
    assert [repr(m) for m in pooled] == [repr(m) for m in serial]
    assert pooled_events == serial_events


def test_parallel_results_reusable_from_serial_cache(tmp_path, monkeypatch):
    """A cache populated by the pool serves a later serial run verbatim."""
    points = _fig7_slice(4)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
    parallel.reset()
    try:
        pooled = MeasurementExecutor(jobs=2).measure_points(points)
    finally:
        parallel.shutdown_pool()
    parallel.reset()  # drop the memo; force the disk path
    serial = MeasurementExecutor(jobs=1).measure_points(points)
    assert parallel.stats().simulations == 0
    assert parallel.stats().disk_hits == len(set(repr(p) for p in points))
    assert [repr(m) for m in serial] == [repr(m) for m in pooled]
    parallel.reset()
