"""Integration tests for the measurement daemon and its client.

The daemon runs in-process (:class:`BackgroundService` on its own event
loop thread) with ephemeral ports, so the suite needs no network setup
and can run many instances concurrently.  Each test uses a unique
simulation window so its points are guaranteed cold in the memo/cache.
"""

import asyncio
import socket
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import parallel
from repro.core.experiment import (
    ExperimentSettings,
    MeasurementPoint,
    simulate_point,
)
from repro.core.parallel import MeasurementExecutor
from repro.core.patterns import pattern_by_name
from repro.hmc.packet import RequestType
from repro.service.batcher import BatcherClosed, CoalescingBatcher
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceError
from repro.service.server import BackgroundService


def _tiny(window_us: float) -> ExperimentSettings:
    """Unique-window settings: cold in every cache, cheap to simulate."""
    return ExperimentSettings(warmup_us=5.0, window_us=window_us)


def _point(settings: ExperimentSettings, payload_bytes: int = 32, seed: int = 1):
    pattern = pattern_by_name("1 bank", settings.config)
    return MeasurementPoint.for_pattern(
        pattern,
        request_type=RequestType.READ,
        payload_bytes=payload_bytes,
        settings=settings,
    ) if seed == 1 else MeasurementPoint(
        mask=pattern.mask,
        request_type=RequestType.READ,
        payload_bytes=payload_bytes,
        settings=settings,
        pattern_name=pattern.name,
        seed=seed,
    )


def test_hundred_identical_requests_cost_one_simulation():
    """The coalescing guarantee: N identical in-flight points, 1 run."""
    settings = _tiny(window_us=10.25)
    point = _point(settings)
    expected = simulate_point(point)[0]
    parallel.reset()
    with BackgroundService(jobs=1) as service:
        def worker(_index: int):
            with ServiceClient(port=service.port) as client:
                return client.measure_many([point] * 25)

        with ThreadPoolExecutor(max_workers=4) as pool:
            batches = list(pool.map(worker, range(4)))
        with ServiceClient(port=service.port) as client:
            stats = client.stats()

    results = [m for batch in batches for m in batch]
    assert len(results) == 100
    assert parallel.stats().simulations == 1
    assert stats["measure_requests"] == 100
    assert stats["simulated"] == 1
    assert stats["coalesced"] + stats["cache_served"] == 99
    # Daemon-served results are bit-identical to the in-process run.
    assert all(repr(m) == repr(expected) for m in results)


def test_mixed_load_mostly_coalesces_and_matches_direct_runs():
    """100 concurrent requests over 10 distinct points: >=90 free."""
    settings = _tiny(window_us=10.5)
    points = [_point(settings, seed=seed) for seed in range(1, 11)]
    expected = {point.seed: simulate_point(point)[0] for point in points}
    parallel.reset()
    with BackgroundService(jobs=1) as service:
        def worker(_index: int):
            with ServiceClient(port=service.port) as client:
                return client.measure_many(points)

        with ThreadPoolExecutor(max_workers=10) as pool:
            batches = list(pool.map(worker, range(10)))
        with ServiceClient(port=service.port) as client:
            stats = client.stats()

    assert parallel.stats().simulations == len(points)
    assert stats["measure_requests"] == 100
    assert stats["simulated"] == len(points)
    assert stats["coalesced"] + stats["cache_served"] >= 90
    for batch in batches:
        for point, measurement in zip(points, batch):
            assert repr(measurement) == repr(expected[point.seed])
    latency = stats["latency"]
    assert latency["count"] == 100
    assert latency["p95_ms"] >= latency["p50_ms"] > 0


def test_stats_ping_and_error_responses():
    with BackgroundService(jobs=1) as service:
        with ServiceClient(port=service.port) as client:
            assert client.ping() is True
            stats = client.stats()
            for key in (
                "uptime_s",
                "requests",
                "measure_requests",
                "coalesced",
                "cache_served",
                "simulated",
                "queue_depth",
                "inflight",
                "latency",
            ):
                assert key in stats
        # Malformed lines get an error response, not a dropped connection.
        with socket.create_connection(("127.0.0.1", service.port)) as raw:
            handle = raw.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.write(b'{"schema": 1, "verb": "frobnicate"}\n')
            handle.write(b'{"schema": 7, "verb": "ping"}\n')
            handle.flush()
            import json

            for _ in range(3):
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["error"]
        with ServiceClient(port=service.port) as client:
            with pytest.raises(ServiceError):
                client._roundtrip({"schema": 1, "verb": "measure"})


def test_metrics_verb_returns_registry_snapshot():
    with BackgroundService(jobs=1) as service:
        with ServiceClient(port=service.port) as client:
            client.ping()
            snapshot = client.metrics()
    series = snapshot["series"]
    by_name = {entry["name"] for entry in series}
    # the daemon's own counters and the process-wide executor series
    assert "service_requests_total" in by_name
    assert "service_uptime_seconds" in by_name
    assert "executor_simulations_total" in by_name
    histogram = next(
        entry for entry in series if entry["name"] == "service_latency_seconds"
    )
    assert histogram["type"] == "histogram"
    assert "+Inf" in histogram["buckets"]


def test_shutdown_verb_drains_and_stops_accepting():
    settings = _tiny(window_us=10.75)
    with BackgroundService(jobs=1) as service:
        port = service.port
        with ServiceClient(port=port) as client:
            results = client.measure_many([_point(settings)] * 5)
            assert len(results) == 5
            client.shutdown()
        service._thread.join(timeout=30)
        assert not service._thread.is_alive()
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=0.5).close()


def test_batcher_drain_completes_inflight_work():
    """Graceful drain: everything submitted before drain still resolves."""

    async def scenario():
        settings = _tiny(window_us=11.25)
        batcher = CoalescingBatcher(MeasurementExecutor(jobs=1), max_batch=2)
        batcher.start()
        points = [_point(settings, payload_bytes=size) for size in (16, 32, 48)]
        tasks = [asyncio.ensure_future(batcher.submit(p)) for p in points]
        await asyncio.sleep(0)  # let every submit enqueue its point
        await batcher.drain()
        results = await asyncio.gather(*tasks)
        assert [m.payload_bytes for m in results] == [16, 32, 48]
        with pytest.raises(BatcherClosed):
            await batcher.submit(points[0])

    asyncio.run(scenario())


def test_backpressure_queue_bounds_pending_points():
    """A full queue delays submitters instead of growing without bound."""

    async def scenario():
        settings = _tiny(window_us=11.5)
        batcher = CoalescingBatcher(
            MeasurementExecutor(jobs=1), max_queue=2, max_batch=1
        )
        points = [
            _point(settings, payload_bytes=16 * (1 + i % 8), seed=1 + i // 8)
            for i in range(6)
        ]
        batcher.start()
        tasks = [asyncio.ensure_future(batcher.submit(p)) for p in points]
        results = await asyncio.gather(*tasks)
        assert len(results) == 6
        await batcher.drain()

    asyncio.run(scenario())


def test_read_timeout_raises_typed_timeout_error():
    """A daemon that accepts but never answers must not hang the client."""
    from repro.service.protocol import ServiceTimeoutError

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    try:
        client = ServiceClient(port=port, connect_timeout=5.0, read_timeout=0.2)
        try:
            with pytest.raises(ServiceTimeoutError, match="timed out after 0.2s"):
                client.ping()
        finally:
            client.close()
    finally:
        listener.close()
    # The typed error serves both exception families: existing callers
    # catching ServiceError and new callers catching TimeoutError.
    assert issubclass(ServiceTimeoutError, ServiceError)
    assert issubclass(ServiceTimeoutError, TimeoutError)


def test_background_service_start_propagates_startup_failures():
    """A daemon that cannot bind must raise in start(), not hang forever."""
    service = BackgroundService(host="999.999.999.999")
    with pytest.raises(OSError):
        service.start()


def test_background_service_stop_is_clean_after_failed_start():
    service = BackgroundService(host="999.999.999.999")
    with pytest.raises(OSError):
        service.start()
    service.stop()  # the dead thread joins immediately; no error


def test_daemon_preforks_worker_pool_before_serving():
    """The pool must fork before any socket exists (fd inheritance).

    A pool forked lazily mid-request inherits the daemon's listener and
    connection fds; after a SIGKILL those sockets stay alive in the
    orphaned workers and peers — the fleet router in particular — hang
    on reads that never see EOF instead of failing over.
    """
    parallel.shutdown_pool()
    try:
        with BackgroundService(jobs=2, use_cache=False):
            assert parallel.pool_workers() >= 2
            # The width being configured is not enough - the worker
            # *processes* must exist (ProcessPoolExecutor forks lazily).
            assert len(parallel._POOL._processes) >= 2
    finally:
        parallel.shutdown_pool()
