"""Tests for DRAM timing (closed page + open-page baseline)."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.dram import DramTimings, OpenPageTimings
from repro.hmc.errors import ConfigurationError

TIMINGS = DramTimings()
payloads = st.integers(min_value=1, max_value=128)


def test_bus_beats_quantize_to_32_bytes():
    assert TIMINGS.bus_beats(16) == 1
    assert TIMINGS.bus_beats(32) == 1
    assert TIMINGS.bus_beats(33) == 2
    assert TIMINGS.bus_beats(128) == 4
    assert TIMINGS.bus_bytes_moved(16) == 32  # 16 B boundary inefficiency


def test_bus_beats_rejects_nonpositive():
    with pytest.raises(ValueError):
        TIMINGS.bus_beats(0)


def test_transfer_time_at_10_gbs():
    assert TIMINGS.transfer_ns(128) == pytest.approx(12.8)
    assert TIMINGS.transfer_ns(32) == pytest.approx(3.2)


def test_closed_page_read_composition():
    expected = 16.0 + 16.0 + 12.8 + 16.0
    assert TIMINGS.read_occupancy_ns(128) == pytest.approx(expected)


def test_write_occupancy_includes_recovery():
    assert TIMINGS.write_occupancy_ns(128) > TIMINGS.read_occupancy_ns(128)


def test_eight_banks_saturate_one_vault():
    """The calibration target of SIV-B: the vault's 10 GB/s TSV cap binds
    between four and eight banks, so adding banks past eight is free."""
    per_bank = TIMINGS.peak_bank_gbs(128)
    assert 4 * per_bank < TIMINGS.bus_gbps
    assert 8 * per_bank > TIMINGS.bus_gbps


@given(payloads)
def test_occupancy_monotone_in_direction(payload):
    assert TIMINGS.write_occupancy_ns(payload) >= TIMINGS.read_occupancy_ns(payload)


@given(st.integers(min_value=1, max_value=127))
def test_occupancy_monotone_in_size(payload):
    assert TIMINGS.read_occupancy_ns(payload + 1) >= TIMINGS.read_occupancy_ns(payload)


def test_invalid_timings_rejected():
    with pytest.raises(ConfigurationError):
        DramTimings(t_rcd_ns=0.0)
    with pytest.raises(ConfigurationError):
        DramTimings(bus_bytes=33)
    with pytest.raises(ConfigurationError):
        DramTimings(bus_gbps=-1.0)


# ----------------------------------------------------------------------
# open-page baseline
# ----------------------------------------------------------------------
def test_open_page_hit_cheaper_than_miss():
    open_page = OpenPageTimings()
    hit = open_page.row_hit_occupancy_ns(False, 64)
    empty = open_page.row_empty_occupancy_ns(False, 64)
    miss = open_page.row_miss_occupancy_ns(False, 64)
    assert hit < empty < miss


def test_open_page_hit_skips_activate_and_precharge():
    open_page = OpenPageTimings()
    assert open_page.row_hit_occupancy_ns(False, 32) == pytest.approx(
        open_page.t_cl_ns + open_page.transfer_ns(32)
    )
    assert open_page.row_miss_occupancy_ns(False, 32) == pytest.approx(
        open_page.t_rp_ns + open_page.t_rcd_ns + open_page.row_hit_occupancy_ns(False, 32)
    )
