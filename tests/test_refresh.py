"""Tests for temperature-derated refresh and the feedback loop."""

import pytest

from repro.core.patterns import pattern_by_name
from repro.fpga.board import AC510Board
from repro.fpga.gups import PortConfig
from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import RequestType
from repro.hmc.refresh import DEFAULT_REFRESH, RefreshPolicy
from repro.thermal.cooling import CFG1, CFG4
from repro.thermal.feedback import solve_with_refresh

POLICY = RefreshPolicy()


# ----------------------------------------------------------------------
# policy math
# ----------------------------------------------------------------------
def test_base_rate_below_threshold():
    assert POLICY.rate_multiplier(60.0) == 1.0
    assert POLICY.interval_ns(60.0) == pytest.approx(7800.0)


def test_derated_rate_above_threshold():
    assert POLICY.rate_multiplier(95.0) == 2.0
    assert POLICY.interval_ns(95.0) == pytest.approx(3900.0)


def test_ramp_is_continuous_and_monotone():
    temps = [79.0, 81.0, 83.0, 85.0, 87.0, 89.0, 91.0]
    values = [POLICY.rate_multiplier(t) for t in temps]
    assert values[0] == 1.0
    assert values[-1] == 2.0
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert 1.0 < POLICY.rate_multiplier(85.0) < 2.0


def test_bank_time_stolen_doubles_when_hot():
    cool = POLICY.bank_time_stolen(60.0)
    hot = POLICY.bank_time_stolen(95.0)
    assert cool == pytest.approx(160.0 / 7800.0)
    assert hot == pytest.approx(2 * cool)
    assert POLICY.bandwidth_derate(60.0) == pytest.approx(1 - cool)


def test_refresh_power_scales_with_rate():
    assert POLICY.power_w(95.0) == pytest.approx(2 * POLICY.refresh_power_w)


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        RefreshPolicy(t_refi_ns=0.0)
    with pytest.raises(ConfigurationError):
        RefreshPolicy(t_rfc_ns=8000.0)
    with pytest.raises(ConfigurationError):
        RefreshPolicy(derate_factor=0.5)
    with pytest.raises(ConfigurationError):
        RefreshPolicy(ramp_c=0.0)


# ----------------------------------------------------------------------
# DES integration
# ----------------------------------------------------------------------
def _bank_limited_bw(refresh, junction_c):
    board = AC510Board(refresh=refresh, junction_c=junction_c)
    gups = board.load_gups(
        PortConfig(payload_bytes=128, mask=pattern_by_name("2 banks").mask)
    )
    gups.start()
    board.sim.run(until=15000.0)
    board.controller.begin_measurement()
    board.sim.run(until=60000.0)
    board.controller.end_measurement()
    return board


def test_des_refresh_steals_bank_bandwidth():
    off = _bank_limited_bw(None, 60.0)
    cool = _bank_limited_bw(RefreshPolicy(), 60.0)
    hot = _bank_limited_bw(RefreshPolicy(), 95.0)
    bw_off = off.controller.bandwidth_gbs
    bw_cool = cool.controller.bandwidth_gbs
    bw_hot = hot.controller.bandwidth_gbs
    assert bw_cool < bw_off
    assert bw_hot < bw_cool
    # The loss tracks the tRFC/tREFI fraction (~2% cool, ~4% hot).
    assert bw_cool / bw_off == pytest.approx(POLICY.bandwidth_derate(60.0), abs=0.01)


def test_des_refresh_counts_follow_interval():
    cool = _bank_limited_bw(RefreshPolicy(), 60.0)
    hot = _bank_limited_bw(RefreshPolicy(), 95.0)
    count = lambda board: sum(
        bank.refreshes for vault in board.device.vaults for bank in vault.banks
    )
    assert count(hot) == pytest.approx(2 * count(cool), rel=0.05)


# ----------------------------------------------------------------------
# feedback loop
# ----------------------------------------------------------------------
def test_feedback_cool_config_only_base_derate():
    result = solve_with_refresh(CFG1, RequestType.READ, 20.6)
    assert result.converged
    assert result.refresh_multiplier == 1.0
    assert result.derate == pytest.approx(POLICY.bandwidth_derate(50.0), abs=0.001)
    assert result.thermally_safe


def test_feedback_hot_config_derates_more():
    cool = solve_with_refresh(CFG1, RequestType.READ, 20.6)
    hot = solve_with_refresh(CFG4, RequestType.READ, 20.6)
    assert hot.converged
    assert hot.refresh_multiplier > 1.5
    assert hot.bandwidth_gbs < cool.bandwidth_gbs
    assert hot.refresh_power_w > cool.refresh_power_w
    assert hot.bandwidth_lost_gbs > cool.bandwidth_lost_gbs


def test_feedback_zero_bandwidth():
    result = solve_with_refresh(CFG1, RequestType.READ, 0.0)
    assert result.bandwidth_gbs == 0.0
    assert result.derate == 1.0
    assert result.surface_c == pytest.approx(CFG1.idle_surface_c, abs=0.5)


def test_feedback_write_safety_carried():
    result = solve_with_refresh(CFG4, RequestType.WRITE, 14.5)
    assert not result.thermally_safe
