"""Tests for the sharded measurement fleet.

Ring placement (determinism, distribution, minimal disruption on
rebalance), the persisted fleet state, the router's failover behaviour
under backend death, byte-parity of a 1-backend fleet against a single
daemon, the direct-mode client's ring failover, and the executor
factory that routes sweeps/campaigns through a fleet.

Everything runs in-process (BackgroundService / BackgroundRouter on
their own event-loop threads, ephemeral ports), mirroring the service
suite: no network setup, unique simulation windows per test so points
are cold in every cache.
"""

import socket
from pathlib import Path

import pytest

from repro.core import parallel, schema
from repro.core.cache import cache_key
from repro.core.experiment import ExperimentSettings, MeasurementPoint
from repro.core.patterns import pattern_by_name
from repro.core.sweeps import SweepGrid, run_sweep_detailed
from repro.fleet.client import Backoff, FleetClient, FleetUnavailable
from repro.fleet.executor import FleetExecutor, fleet_executor
from repro.fleet.ring import HashRing
from repro.fleet.router import BackgroundRouter
from repro.fleet.spec import BackendState, FleetSpec, FleetState, FleetStateError
from repro.hmc.packet import RequestType
from repro.service import protocol
from repro.service.server import BackgroundService

DATA = Path(__file__).parent / "data"

#: Exactly the settings/grid the committed golden baselines were made
#: with (see test_devices.py) - reused for the fleet parity gate.
GOLDEN_SETTINGS = ExperimentSettings(warmup_us=2.0, window_us=10.0)
GOLDEN_GRID = SweepGrid(
    patterns=("8 banks", "1 vault"),
    request_types=(RequestType.READ,),
    payload_bytes=(32,),
)

NODES = ["backend-0", "backend-1", "backend-2"]


def _tiny(window_us: float) -> ExperimentSettings:
    """Unique-window settings: cold in every cache, cheap to simulate."""
    return ExperimentSettings(warmup_us=2.0, window_us=window_us)


def _point(settings: ExperimentSettings, payload_bytes: int = 32):
    return MeasurementPoint.for_pattern(
        pattern_by_name("1 bank", settings.config),
        request_type=RequestType.READ,
        payload_bytes=payload_bytes,
        settings=settings,
    )


def _state(backends, router_port=0) -> FleetState:
    """An in-memory FleetState wiring name -> (host, port) maps."""
    return FleetState(
        host="127.0.0.1",
        router_port=router_port,
        router_pid=0,
        backends=tuple(
            BackendState(
                name=name, host=host, port=port, pid=0, cache_dir="", log=""
            )
            for name, (host, port) in backends.items()
        ),
    )


# ------------------------------------------------------------------ ring


def test_ring_placement_is_deterministic_across_instances():
    keys = [f"key-{i}" for i in range(300)]
    first = [HashRing(NODES).node_for(key) for key in keys]
    second = [HashRing(list(reversed(NODES))).node_for(key) for key in keys]
    assert first == second  # insertion order must not matter


def test_committed_cache_keys_route_identically_across_rings():
    # The golden hmc1 cache keys are real routing inputs: two rings
    # built independently must agree on their owners and preferences.
    keys = (DATA / "hmc1_cache_keys.txt").read_text().split()
    ring_a, ring_b = HashRing(NODES), HashRing(NODES)
    for key in keys:
        assert ring_a.node_for(key) == ring_b.node_for(key)
        assert ring_a.preference(key) == ring_b.preference(key)


def test_ring_spreads_keys_across_every_node():
    keys = [f"key-{i}" for i in range(300)]
    shares = HashRing(NODES).shares(keys)
    assert set(shares) == set(NODES)
    assert sum(shares.values()) == len(keys)
    # With 64 virtual nodes each, no backend should own almost
    # everything or almost nothing.
    assert all(20 <= count <= 200 for count in shares.values())


def test_removing_a_node_moves_only_its_keys():
    keys = [f"key-{i}" for i in range(300)]
    ring = HashRing(NODES)
    before = {key: ring.node_for(key) for key in keys}
    ring.remove("backend-1")
    for key in keys:
        after = ring.node_for(key)
        if before[key] == "backend-1":
            assert after != "backend-1"
        else:  # consistent hashing: unaffected keys must not move
            assert after == before[key]
    ring.add("backend-1")
    assert {key: ring.node_for(key) for key in keys} == before


def test_preference_lists_distinct_nodes_starting_with_owner():
    ring = HashRing(NODES)
    for key in ("a", "b", "c", "d"):
        preference = ring.preference(key)
        assert preference[0] == ring.node_for(key)
        assert sorted(preference) == sorted(NODES)


def test_last_ring_node_cannot_be_removed():
    ring = HashRing(["backend-0"])
    with pytest.raises(ValueError):
        ring.remove("backend-0")


# ------------------------------------------------------------ spec/state


def test_fleet_state_round_trips_through_json(tmp_path):
    spec = FleetSpec(backends=2, run_dir=str(tmp_path))
    state = FleetState(
        host="127.0.0.1",
        router_port=8700,
        router_pid=42,
        backends=tuple(
            BackendState(
                name=name,
                host="127.0.0.1",
                port=8700 + i + 1,
                pid=100 + i,
                cache_dir=str(spec.cache_dir(name)),
                log=str(spec.log_path(name)),
            )
            for i, name in enumerate(spec.backend_names())
        ),
        run_dir=str(tmp_path),
        device="hmc2",
    )
    state.save()
    loaded = FleetState.load(tmp_path)
    assert loaded == state
    assert loaded.backend_map() == state.backend_map()
    assert loaded.backend("backend-1").port == 8702


def test_fleet_state_rejects_unknown_version(tmp_path):
    state = _state({"backend-0": ("127.0.0.1", 1)})
    payload = state.to_dict()
    payload["version"] = 99
    with pytest.raises(FleetStateError):
        FleetState.from_dict(payload)


def test_missing_fleet_state_names_the_run_dir(tmp_path):
    with pytest.raises(FleetStateError, match="fleet up"):
        FleetState.load(tmp_path)


def test_spec_requires_at_least_one_backend():
    with pytest.raises(ValueError):
        FleetSpec(backends=0)


# ------------------------------------------------- 1-backend byte parity


def _raw_roundtrip(port: int, line: bytes) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(line)
        with sock.makefile("rb") as reader:
            return reader.readline()


def test_one_backend_fleet_is_byte_identical_to_single_daemon():
    """The parity gate: the router must relay responses verbatim."""
    parallel.reset()
    points = [
        MeasurementPoint.for_pattern(
            pattern_by_name(name, GOLDEN_SETTINGS.config),
            request_type=RequestType.READ,
            payload_bytes=32,
            settings=GOLDEN_SETTINGS,
        )
        for name in GOLDEN_GRID.patterns
    ]
    with BackgroundService(jobs=1, use_cache=False) as backend:
        backends = {"backend-0": ("127.0.0.1", backend.port)}
        with BackgroundRouter(backends) as router:
            for index, point in enumerate(points):
                line = (
                    schema.dumps(protocol.measure_request(point, request_id=index))
                    + "\n"
                ).encode()
                direct = _raw_roundtrip(backend.port, line)
                via_fleet = _raw_roundtrip(router.port, line)
                assert via_fleet == direct


def test_one_backend_fleet_matches_committed_golden_results():
    parallel.reset()
    golden_lines = (DATA / "hmc1_golden_tiny.ndjson").read_text().splitlines()
    points = [
        MeasurementPoint.for_pattern(
            pattern_by_name(name, GOLDEN_SETTINGS.config),
            request_type=RequestType.READ,
            payload_bytes=32,
            settings=GOLDEN_SETTINGS,
        )
        for name in GOLDEN_GRID.patterns
    ]
    with BackgroundService(jobs=1, use_cache=False) as backend:
        backends = {"backend-0": ("127.0.0.1", backend.port)}
        with BackgroundRouter(backends) as router:
            state = _state(backends, router_port=router.port)
            with FleetClient(state=state) as client:
                measurements = client.measure_many(points)
    lines = [
        schema.dumps(schema.result_to_dict(point, measurement))
        for point, measurement in zip(points, measurements)
    ]
    assert lines == golden_lines


# ------------------------------------------------------ router failover


def test_router_fails_over_when_a_backend_dies_under_load():
    settings = _tiny(window_us=11.125)
    points = [_point(settings, size) for size in (16, 32, 48, 64, 80, 96)]
    services = [BackgroundService(jobs=1, use_cache=False) for _ in range(2)]
    try:
        backends = {
            f"backend-{i}": ("127.0.0.1", service.start())
            for i, service in enumerate(services)
        }
        with BackgroundRouter(backends) as router:
            state = _state(backends, router_port=router.port)
            with FleetClient(state=state) as client:
                expected = client.measure_many(points)
                services[0].stop()  # one shard dies mid-fleet
                survivors = client.measure_many(points)
                stats = client.stats()
        assert [m.bandwidth_gbs for m in survivors] == [
            m.bandwidth_gbs for m in expected
        ]
        assert stats["ring"]["nodes"] == ["backend-1"]
        assert stats["ring"]["rebalances"] >= 1
        assert stats["backends"]["backend-0"]["alive"] is False
        assert stats["router"]["errors"] == 0
    finally:
        for service in services:
            try:
                service.stop(timeout=5)
            except RuntimeError:
                pass


def test_router_reports_error_when_every_backend_is_gone():
    settings = _tiny(window_us=11.375)
    service = BackgroundService(jobs=1, use_cache=False)
    backends = {"backend-0": ("127.0.0.1", service.start())}
    service.stop()  # the only backend is already dead
    with BackgroundRouter(backends) as router:
        state = _state(backends, router_port=router.port)
        with FleetClient(state=state, backoff=Backoff(retries=0)) as client:
            # The router answers with a daemon-style error response (it
            # stays up; only the measure fails), which the client
            # surfaces as a ServiceError rather than retrying forever.
            with pytest.raises(protocol.ServiceError, match="no backend available"):
                client.measure(_point(settings))


def test_background_router_propagates_startup_errors():
    with pytest.raises(ValueError, match="at least one backend"):
        BackgroundRouter({}).start()


# ------------------------------------------------- client direct mode


def test_direct_client_fails_over_past_a_dead_address():
    settings = _tiny(window_us=11.625)
    points = [_point(settings, size) for size in (16, 32, 48, 64, 80, 96)]
    # Reserve a port that is guaranteed closed for the dead backend.
    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    dead_port = placeholder.getsockname()[1]
    placeholder.close()
    with BackgroundService(jobs=1, use_cache=False) as alive:
        backends = {
            "backend-0": ("127.0.0.1", alive.port),
            "backend-1": ("127.0.0.1", dead_port),
        }
        state = _state(backends)
        with FleetClient(state=state, via="direct") as client:
            measurements = client.measure_many(points)
        ring = HashRing(backends)
        owned_by_dead = [
            p for p in points if ring.node_for(cache_key(p)) == "backend-1"
        ]
    assert len(measurements) == len(points)
    if owned_by_dead:  # those points must have failed over
        assert client.failovers >= 1


def test_direct_client_raises_fleet_unavailable_when_all_nodes_dead():
    settings = _tiny(window_us=11.75)
    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    dead_port = placeholder.getsockname()[1]
    placeholder.close()
    backends = {
        "backend-0": ("127.0.0.1", dead_port),
        "backend-1": ("127.0.0.1", dead_port),
    }
    state = _state(backends)
    fast = Backoff(retries=1, base=0.01)
    with FleetClient(state=state, via="direct", backoff=fast) as client:
        with pytest.raises(FleetUnavailable, match="no backend reachable"):
            client.measure(_point(settings))
    assert client.retries >= 1


def test_direct_client_routes_by_the_same_ring_as_the_router():
    settings = _tiny(window_us=11.875)
    points = [_point(settings, size) for size in (16, 48, 96, 128)]
    services = [BackgroundService(jobs=1, use_cache=False) for _ in range(2)]
    try:
        backends = {
            f"backend-{i}": ("127.0.0.1", service.start())
            for i, service in enumerate(services)
        }
        state = _state(backends)
        with FleetClient(state=state, via="direct") as client:
            client.measure_many(points)
        # Each backend's measure count equals its ring share: the
        # client placed every point exactly where the ring says.
        ring = HashRing(backends)
        shares = ring.shares([cache_key(p) for p in points])
        for i, service in enumerate(services):
            snapshot = service.service.metrics.snapshot()
            assert snapshot["measure_requests"] == shares.get(f"backend-{i}", 0)
    finally:
        for service in services:
            service.stop(timeout=5)


def test_backoff_schedule_is_capped_exponential():
    assert Backoff(retries=4, base=0.1, factor=2.0, max_delay=0.5).delays() == [
        0.1,
        0.2,
        0.4,
        0.5,
    ]
    assert Backoff(retries=0).delays() == []


# ------------------------------------------------- executor transparency


def test_fleet_executor_routes_sweeps_through_the_fleet():
    settings = _tiny(window_us=12.125)
    grid = SweepGrid(
        patterns=("1 bank",),
        request_types=(RequestType.READ,),
        payload_bytes=(32, 64),
    )
    parallel.reset()
    expected = run_sweep_detailed(grid, settings, jobs=1, use_cache=False)
    parallel.reset()
    with BackgroundService(jobs=1, use_cache=False) as backend:
        backends = {"backend-0": ("127.0.0.1", backend.port)}
        with BackgroundRouter(backends) as router:
            state = _state(backends, router_port=router.port)
            with FleetClient(state=state) as client:
                parallel.reset()  # all simulation must happen fleet-side
                with fleet_executor(client=client):
                    via_fleet = run_sweep_detailed(
                        grid, settings, jobs=1, use_cache=False
                    )
                backend_simulations = parallel.stats().simulations
    # This process simulated every point exactly once - in the backend
    # daemon's thread, not the sweep's (both live in this process here).
    assert backend_simulations == len(expected)
    for (p0, m0), (p1, m1) in zip(expected, via_fleet):
        assert cache_key(p0) == cache_key(p1)
        assert repr(m0) == repr(m1)
    # The factory is restored: executors are local again.
    assert isinstance(parallel.get_executor(), parallel.MeasurementExecutor)


def test_executor_factory_installs_and_restores():
    sentinel = object()
    previous = parallel.set_executor_factory(lambda: sentinel)
    try:
        assert parallel.get_executor() is sentinel
        assert parallel.executor_for(jobs=4) is sentinel
    finally:
        parallel.set_executor_factory(previous)
    assert isinstance(parallel.get_executor(), parallel.MeasurementExecutor)


def test_fleet_executor_deduplicates_before_the_wire():
    class CountingClient:
        def __init__(self):
            self.batches = []

        def measure_many(self, points):
            self.batches.append(list(points))
            return [f"m-{cache_key(p)[:8]}" for p in points]

    settings = _tiny(window_us=12.375)
    point = _point(settings)
    client = CountingClient()
    executor = FleetExecutor(client, use_cache=False)
    results = executor.measure_points([point, point, point])
    assert len(client.batches) == 1
    assert len(client.batches[0]) == 1  # one unique point on the wire
    assert results[0] == results[1] == results[2]


def test_fleet_executor_caches_fresh_results_locally(tmp_path):
    """Fleet-fetched results land in the local memo and disk cache, so a
    repeat batch - even from a fresh executor - never travels again."""
    from repro.core.cache import ResultCache
    from repro.core.experiment import simulate_point

    class CountingClient:
        def __init__(self):
            self.batches = []

        def measure_many(self, points):
            self.batches.append(list(points))
            return [simulate_point(p)[0] for p in points]

    settings = _tiny(window_us=12.625)
    point = _point(settings)
    cache = ResultCache(root=tmp_path / "fleet-cache")
    client = CountingClient()
    parallel.reset()
    first = FleetExecutor(client, cache=cache).measure_point(point)
    assert len(client.batches) == 1
    assert cache.load(cache_key(point)) is not None  # one store_many ran

    # Same executor class, fresh instance, memo dropped: the disk cache
    # answers and the wire stays quiet.
    parallel.reset()
    again = FleetExecutor(client, cache=cache).measure_point(point)
    assert len(client.batches) == 1
    assert repr(again) == repr(first)
    assert parallel.stats().disk_hits == 1

    # Memo now primed: a third call is a memo hit, still no round-trip.
    third = FleetExecutor(client, cache=cache).measure_point(point)
    assert len(client.batches) == 1
    assert repr(third) == repr(first)
    assert parallel.stats().memo_hits == 1
