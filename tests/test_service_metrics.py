"""Edge cases of the daemon's latency percentiles and stats snapshot."""

from __future__ import annotations

import math

import pytest

from repro.service.metrics import (
    LatencyWindow,
    ServiceMetrics,
    _json_float,
    percentile,
)


# ----------------------------------------------------------------------
# percentile (linear interpolation between closest ranks)
# ----------------------------------------------------------------------
def test_percentile_of_empty_window_is_nan():
    assert math.isnan(percentile([], 0.50))
    assert math.isnan(percentile([], 0.95))


def test_percentile_of_single_sample_is_that_sample():
    assert percentile([7.5], 0.50) == 7.5
    assert percentile([7.5], 0.95) == 7.5
    assert percentile([7.5], 1.0) == 7.5


def test_median_of_even_count_interpolates_midway():
    """The defining case nearest-rank gets wrong: median of [1, 2]."""
    assert percentile([1.0, 2.0], 0.50) == 1.5


def test_percentile_interpolates_between_closest_ranks():
    """p95 over 1..20 sits at position 0.95 * 19 = 18.05 -> 19.05."""
    samples = [float(v) for v in range(1, 21)]
    assert percentile(samples, 0.95) == pytest.approx(19.05)
    assert percentile(samples, 0.99) == pytest.approx(19.81)


def test_percentile_matches_numpy_linear_definition():
    """position = fraction * (n - 1), interpolated, for assorted cases."""
    samples = [10.0, 20.0, 30.0, 40.0, 50.0]
    assert percentile(samples, 0.25) == 20.0
    assert percentile(samples, 0.50) == 30.0
    assert percentile(samples, 0.10) == pytest.approx(14.0)


def test_percentile_sorts_its_input():
    assert percentile([3.0, 1.0, 2.0], 0.50) == 2.0


def test_percentile_rank_is_clamped():
    assert percentile([1.0, 2.0], 0.0) == 1.0
    assert percentile([1.0, 2.0], 1.0) == 2.0


# ----------------------------------------------------------------------
# LatencyWindow
# ----------------------------------------------------------------------
def test_empty_window_snapshot_is_zeros_with_count():
    """No traffic reports count 0 + zero percentiles, never NaN.

    Fleet aggregation weights percentiles by ``count``, so zeros from
    an idle backend are inert; NaN would poison any merge and needs a
    sentinel on the JSON wire.
    """
    snapshot = LatencyWindow().snapshot_ms()
    assert snapshot == {
        "count": 0,
        "p50_ms": 0.0,
        "p95_ms": 0.0,
        "p99_ms": 0.0,
        "max_ms": 0.0,
    }


def test_single_sample_snapshot_collapses_to_it():
    window = LatencyWindow()
    window.observe(0.002)
    snapshot = window.snapshot_ms()
    assert snapshot["count"] == 1
    assert snapshot["p50_ms"] == 2.0
    assert snapshot["p95_ms"] == 2.0
    assert snapshot["p99_ms"] == 2.0
    assert snapshot["max_ms"] == 2.0


def test_window_evicts_but_count_is_lifetime():
    window = LatencyWindow(size=4)
    for i in range(10):
        window.observe(float(i))
    snapshot = window.snapshot_ms()
    assert snapshot["count"] == 10
    # only the newest four samples (6..9 s) remain in the window;
    # interpolated median of [6, 7, 8, 9] is 7.5 s
    assert snapshot["p50_ms"] == 7500.0
    assert snapshot["max_ms"] == 9000.0


# ----------------------------------------------------------------------
# ServiceMetrics.snapshot and _json_float
# ----------------------------------------------------------------------
def test_snapshot_with_no_latency_samples_is_strict_json():
    snapshot = ServiceMetrics().snapshot(queue_depth=3, inflight=1)
    assert snapshot["queue_depth"] == 3
    assert snapshot["inflight"] == 1
    assert snapshot["latency"]["count"] == 0
    assert snapshot["latency"]["p50_ms"] == 0.0
    assert snapshot["latency"]["p95_ms"] == 0.0
    assert snapshot["latency"]["p99_ms"] == 0.0
    assert snapshot["latency"]["max_ms"] == 0.0


def test_snapshot_reports_observed_latency():
    metrics = ServiceMetrics()
    metrics.observe_latency(0.010)
    latency = metrics.snapshot()["latency"]
    assert latency == {
        "count": 1,
        "p50_ms": 10.0,
        "p95_ms": 10.0,
        "p99_ms": 10.0,
        "max_ms": 10.0,
    }


def test_snapshot_carries_executor_labels():
    """The executor section exposes pool width and start method."""
    executor = ServiceMetrics().snapshot()["executor"]
    assert executor["start_method"] in ("fork", "forkserver", "spawn")
    assert executor["pool_workers"] >= 0
    assert "simulations" in executor


def test_json_float_maps_only_nan_to_none():
    assert _json_float(math.nan) is None
    assert _json_float(1.5) == 1.5
    assert _json_float(0.0) == 0.0
