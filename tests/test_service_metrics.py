"""Edge cases of the daemon's latency percentiles and stats snapshot."""

from __future__ import annotations

import math

from repro.service.metrics import (
    LatencyWindow,
    ServiceMetrics,
    _json_float,
    percentile,
)


# ----------------------------------------------------------------------
# percentile (nearest-rank)
# ----------------------------------------------------------------------
def test_percentile_of_empty_window_is_nan():
    assert math.isnan(percentile([], 0.50))
    assert math.isnan(percentile([], 0.95))


def test_percentile_of_single_sample_is_that_sample():
    assert percentile([7.5], 0.50) == 7.5
    assert percentile([7.5], 0.95) == 7.5
    assert percentile([7.5], 1.0) == 7.5


def test_p95_with_fewer_than_twenty_samples_is_the_maximum():
    """Nearest-rank: below 20 samples the 95th percentile is the max."""
    for n in range(1, 20):
        samples = list(range(1, n + 1))
        assert percentile(samples, 0.95) == n


def test_p95_with_twenty_samples_drops_the_top_one():
    samples = list(range(1, 21))
    assert percentile(samples, 0.95) == 19


def test_percentile_sorts_its_input():
    assert percentile([3.0, 1.0, 2.0], 0.50) == 2.0


def test_percentile_rank_is_clamped():
    assert percentile([1.0, 2.0], 0.0) == 1.0
    assert percentile([1.0, 2.0], 1.0) == 2.0


# ----------------------------------------------------------------------
# LatencyWindow
# ----------------------------------------------------------------------
def test_empty_window_snapshot_is_all_nan():
    snapshot = LatencyWindow().snapshot_ms()
    assert snapshot["count"] == 0
    assert math.isnan(snapshot["p50_ms"])
    assert math.isnan(snapshot["p95_ms"])
    assert math.isnan(snapshot["max_ms"])


def test_single_sample_snapshot_collapses_to_it():
    window = LatencyWindow()
    window.observe(0.002)
    snapshot = window.snapshot_ms()
    assert snapshot["count"] == 1
    assert snapshot["p50_ms"] == 2.0
    assert snapshot["p95_ms"] == 2.0
    assert snapshot["max_ms"] == 2.0


def test_window_evicts_but_count_is_lifetime():
    window = LatencyWindow(size=4)
    for i in range(10):
        window.observe(float(i))
    snapshot = window.snapshot_ms()
    assert snapshot["count"] == 10
    # only the newest four samples (6..9 s) remain in the window
    assert snapshot["p50_ms"] == 7000.0
    assert snapshot["max_ms"] == 9000.0


# ----------------------------------------------------------------------
# ServiceMetrics.snapshot and _json_float
# ----------------------------------------------------------------------
def test_snapshot_with_no_latency_samples_is_strict_json():
    snapshot = ServiceMetrics().snapshot(queue_depth=3, inflight=1)
    assert snapshot["queue_depth"] == 3
    assert snapshot["inflight"] == 1
    assert snapshot["latency"]["count"] == 0
    assert snapshot["latency"]["p50_ms"] is None
    assert snapshot["latency"]["p95_ms"] is None
    assert snapshot["latency"]["max_ms"] is None


def test_snapshot_reports_observed_latency():
    metrics = ServiceMetrics()
    metrics.observe_latency(0.010)
    latency = metrics.snapshot()["latency"]
    assert latency == {"count": 1, "p50_ms": 10.0, "p95_ms": 10.0, "max_ms": 10.0}


def test_json_float_maps_only_nan_to_none():
    assert _json_float(math.nan) is None
    assert _json_float(1.5) == 1.5
    assert _json_float(0.0) == 0.0
