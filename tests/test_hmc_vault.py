"""Tests for the vault controller and bank model."""

import pytest

from repro.hmc.calibration import Calibration
from repro.hmc.dram import DramTimings
from repro.hmc.packet import Request
from repro.hmc.vault import VaultController
from repro.sim.engine import Simulator

CAL = Calibration()


def make_vault(sim, completions):
    return VaultController(
        sim,
        index=0,
        num_banks=16,
        timings=DramTimings(),
        calibration=CAL,
        on_response=lambda req, depart: completions.append((req, depart)),
    )


def read_request(address=0, payload=128):
    return Request(address=address, payload_bytes=payload, is_write=False, port=0)


def write_request(address=0, payload=128):
    return Request(address=address, payload_bytes=payload, is_write=True, port=0)


def test_single_read_timing():
    sim = Simulator()
    done = []
    vault = make_vault(sim, done)
    vault.accept(read_request(), bank_index=0)
    sim.run()
    assert len(done) == 1
    _, depart = done[0]
    # command dispatch + RCD + CL + 128 B over the 10 GB/s TSV bus.
    assert depart == pytest.approx(CAL.vault_command_ns + 16.0 + 16.0 + 12.8)


def test_write_departure_after_commit():
    sim = Simulator()
    done = []
    vault = make_vault(sim, done)
    vault.accept(write_request(), bank_index=0)
    sim.run()
    _, depart = done[0]
    assert depart == pytest.approx(CAL.vault_command_ns + 16.0 + 12.0 + 12.8)


def test_same_bank_serializes():
    sim = Simulator()
    done = []
    vault = make_vault(sim, done)
    vault.accept(read_request(0), bank_index=0)
    vault.accept(read_request(1 << 11), bank_index=0)
    sim.run()
    departs = sorted(depart for _, depart in done)
    occupancy = DramTimings().read_occupancy_ns(128)
    assert departs[1] - departs[0] >= occupancy - 12.8 - 1e-6


def test_different_banks_overlap():
    sim = Simulator()
    done = []
    vault = make_vault(sim, done)
    vault.accept(read_request(0), bank_index=0)
    vault.accept(read_request(1), bank_index=1)
    sim.run()
    departs = sorted(depart for _, depart in done)
    # The second access overlaps in the banks and only serializes on the
    # shared TSV bus (12.8 ns per 128 B transfer).
    assert departs[1] - departs[0] < DramTimings().read_occupancy_ns(128) / 2


def test_tsv_bus_is_the_shared_bottleneck():
    sim = Simulator()
    done = []
    vault = make_vault(sim, done)
    n = 64
    for i in range(n):
        vault.accept(read_request(i), bank_index=i % 16)
    sim.run()
    last = max(depart for _, depart in done)
    # n transfers of 128 B over 10 GB/s = 12.8 ns each; the vault cannot
    # beat its TSV bandwidth no matter the bank parallelism.
    assert last >= n * 12.8 * 0.95


def test_bank_queue_backpressure_parks_producer():
    sim = Simulator()
    done = []
    vault = make_vault(sim, done)
    accepted = []
    total = CAL.vault_queue_per_bank + 5
    for i in range(total):
        vault.accept(read_request(i), bank_index=0, on_accepted=lambda: accepted.append(1))
    # The queue holds vault_queue_per_bank entries; one is in service...
    assert len(accepted) <= CAL.vault_queue_per_bank + 1
    sim.run()
    assert len(done) == total
    assert len(accepted) == total


def test_counters_and_reset():
    sim = Simulator()
    done = []
    vault = make_vault(sim, done)
    vault.accept(read_request(), bank_index=3)
    sim.run()
    assert vault.requests_accepted == 1
    assert vault.payload_bytes_accepted == 128
    assert vault.banks[3].accesses == 1
    vault.reset_counters()
    assert vault.requests_accepted == 0
    assert vault.banks[3].accesses == 0


def test_queued_property():
    sim = Simulator()
    vault = make_vault(sim, [])
    for i in range(4):
        vault.accept(read_request(i), bank_index=0)
    assert vault.queued >= 3  # one may have started service
    sim.run()
    assert vault.queued == 0
