"""Tests for the open-page DDR baseline."""

import pytest

from repro.baseline.ddr import DdrConfig, DdrDimm
from repro.hmc.errors import ConfigurationError


def test_linear_stream_mostly_row_hits():
    dimm = DdrDimm()
    addresses = dimm.linear_stream(512, 64)
    result = dimm.replay(addresses, 64)
    assert result.hit_rate > 0.9


def test_random_stream_mostly_misses():
    dimm = DdrDimm()
    addresses = dimm.random_stream(512, 64, seed=1)
    result = dimm.replay(addresses, 64)
    assert result.hit_rate < 0.1


def test_open_page_rewards_locality():
    """The counterfactual to HMC's Fig. 13: on an open-page DIMM the
    linear stream is clearly faster than the random one."""
    dimm = DdrDimm()
    linear = dimm.replay(dimm.linear_stream(1024, 64), 64)
    random_ = dimm.replay(dimm.random_stream(1024, 64, seed=2), 64)
    assert linear.bandwidth_gbs(64) > 1.3 * random_.bandwidth_gbs(64)


def test_hit_miss_empty_accounting():
    dimm = DdrDimm()
    result = dimm.replay(dimm.linear_stream(100, 64), 64)
    assert result.row_hits + result.row_misses + result.row_empties == 100
    assert result.accesses == 100


def test_first_touch_of_each_bank_is_row_empty():
    dimm = DdrDimm(DdrConfig(num_banks=4))
    # One access per bank: rows are empty, no hits or conflicts.
    addresses = [i * dimm.config.row_bytes for i in range(4)]
    result = dimm.replay(addresses, 64)
    assert result.row_empties == 4
    assert result.row_hits == 0
    assert result.row_misses == 0


def test_row_conflict_detected():
    dimm = DdrDimm(DdrConfig(num_banks=4))
    row = dimm.config.row_bytes
    bank_stride = row * dimm.config.num_banks
    addresses = [0, bank_stride, 0]  # same bank, different rows, back
    result = dimm.replay(addresses, 64)
    assert result.row_misses == 2
    assert result.row_empties == 1


def test_bandwidth_zero_for_empty_stream():
    dimm = DdrDimm()
    result = dimm.replay([], 64)
    assert result.bandwidth_gbs(64) == 0.0
    assert result.avg_access_ns == 0.0


def test_addresses_wrap_at_capacity():
    dimm = DdrDimm()
    result = dimm.replay([dimm.config.capacity_bytes + 64], 64)
    assert result.accesses == 1


def test_config_validation():
    with pytest.raises(ConfigurationError):
        DdrConfig(row_bytes=1000)
    with pytest.raises(ConfigurationError):
        DdrConfig(num_banks=3)


def test_random_stream_deterministic():
    dimm = DdrDimm()
    assert dimm.random_stream(10, 64, seed=5) == dimm.random_stream(10, 64, seed=5)
