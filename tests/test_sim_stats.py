"""Unit + property tests for the statistics collectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import OnlineStats, RateMeter, WindowedSampler

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# OnlineStats
# ----------------------------------------------------------------------
def test_online_stats_empty():
    stats = OnlineStats()
    assert stats.count == 0
    assert math.isnan(stats.mean)
    assert math.isnan(stats.variance)


def test_online_stats_basic():
    stats = OnlineStats()
    stats.extend([1.0, 2.0, 3.0, 4.0])
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0
    assert stats.total == pytest.approx(10.0)
    assert stats.variance == pytest.approx(1.25)
    assert stats.stddev == pytest.approx(math.sqrt(1.25))


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_online_stats_matches_direct_computation(values):
    stats = OnlineStats()
    stats.extend(values)
    mean = sum(values) / len(values)
    assert stats.count == len(values)
    assert stats.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    assert stats.variance == pytest.approx(variance, rel=1e-6, abs=1e-3)


@given(
    st.lists(finite_floats, min_size=0, max_size=50),
    st.lists(finite_floats, min_size=0, max_size=50),
)
def test_online_stats_merge_equals_sequential(a, b):
    left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
    left.extend(a)
    right.extend(b)
    combined.extend(a + b)
    merged = left.merge(right)
    assert merged.count == combined.count
    if combined.count:
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum
        assert merged.variance == pytest.approx(
            combined.variance, rel=1e-6, abs=1e-3
        )


# ----------------------------------------------------------------------
# RateMeter
# ----------------------------------------------------------------------
def test_rate_meter_window_discipline():
    meter = RateMeter()
    meter.record(100)  # before open: ignored
    meter.open(10.0)
    meter.record(100)
    meter.record(50)
    meter.close(110.0)
    meter.record(100)  # after close: ignored
    assert meter.events == 2
    assert meter.bytes == 150
    assert meter.window_ns == pytest.approx(100.0)
    assert meter.gbytes_per_s == pytest.approx(1.5)
    assert meter.mrps == pytest.approx(20.0)


def test_rate_meter_close_before_open_raises():
    with pytest.raises(RuntimeError):
        RateMeter().close(1.0)


def test_rate_meter_reopen_resets():
    meter = RateMeter()
    meter.open(0.0)
    meter.record(10)
    meter.close(1.0)
    meter.open(5.0)
    assert meter.events == 0
    assert meter.bytes == 0
    assert meter.is_open


def test_rate_meter_zero_window():
    meter = RateMeter()
    meter.open(1.0)
    meter.close(1.0)
    assert meter.gbytes_per_s == 0.0


# ----------------------------------------------------------------------
# WindowedSampler
# ----------------------------------------------------------------------
def test_windowed_sampler_only_records_when_open():
    sampler = WindowedSampler()
    sampler.record(1.0)
    sampler.open()
    sampler.record(2.0)
    sampler.record(4.0)
    sampler.close()
    sampler.record(8.0)
    assert sampler.stats.count == 2
    assert sampler.stats.mean == pytest.approx(3.0)


def test_windowed_sampler_reopen_clears():
    sampler = WindowedSampler()
    sampler.open()
    sampler.record(1.0)
    sampler.close()
    sampler.open()
    assert sampler.stats.count == 0


# ----------------------------------------------------------------------
# QuantileReservoir
# ----------------------------------------------------------------------
def test_quantile_reservoir_exact_under_capacity():
    from repro.sim.stats import QuantileReservoir

    reservoir = QuantileReservoir(capacity=128)
    for value in range(101):
        reservoir.add(float(value))
    assert reservoir.exact
    assert reservoir.quantile(0.0) == 0.0
    assert reservoir.quantile(1.0) == 100.0
    assert reservoir.quantile(0.5) == pytest.approx(50.0)
    assert reservoir.quantile(0.99) == pytest.approx(99.0)


def test_quantile_reservoir_estimates_after_eviction():
    from repro.sim.stats import QuantileReservoir

    reservoir = QuantileReservoir(capacity=256, seed=7)
    for value in range(10000):
        reservoir.add(float(value))
    assert not reservoir.exact
    assert reservoir.quantile(0.5) == pytest.approx(5000.0, rel=0.15)
    assert reservoir.quantile(0.9) == pytest.approx(9000.0, rel=0.15)


def test_quantile_reservoir_validation():
    from repro.sim.stats import QuantileReservoir

    with pytest.raises(ValueError):
        QuantileReservoir(capacity=0)
    reservoir = QuantileReservoir()
    with pytest.raises(ValueError):
        reservoir.quantile(1.5)
    assert math.isnan(reservoir.quantile(0.5))


def test_quantile_reservoir_deterministic():
    from repro.sim.stats import QuantileReservoir

    def fill(seed):
        r = QuantileReservoir(capacity=64, seed=seed)
        for v in range(1000):
            r.add(float(v % 37))
        return r.quantile(0.75)

    assert fill(3) == fill(3)


def test_windowed_sampler_quantiles():
    sampler = WindowedSampler()
    sampler.open()
    for value in (1.0, 2.0, 3.0, 4.0, 100.0):
        sampler.record(value)
    sampler.close()
    assert sampler.quantiles.quantile(0.5) == pytest.approx(3.0)
    assert sampler.quantiles.quantile(1.0) == pytest.approx(100.0)
