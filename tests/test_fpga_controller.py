"""Tests for the FPGA-side HMC controller (TX/RX, flow control)."""

import pytest

from repro.fpga.board import AC510Board
from repro.hmc.packet import Request


def submit_and_run(board, request):
    board.controller.submit(request)
    board.sim.run()
    return request


def test_latency_clock_starts_at_submit():
    board = AC510Board()
    request = Request(address=0, payload_bytes=128, is_write=False, port=0)
    board.sim.schedule(100.0, board.controller.submit, request)
    board.sim.run()
    assert request.submit_ns == pytest.approx(100.0)
    assert request.complete_ns > request.submit_ns


def test_no_load_roundtrip_near_paper_values():
    """SIV-E2: minimum RTT ~655 ns at 16 B, ~711 ns at 128 B (the GUPS
    path, without the stream interface, runs slightly below those)."""
    board = AC510Board()
    small = submit_and_run(
        board, Request(address=0, payload_bytes=16, is_write=False, port=0)
    )
    large = submit_and_run(
        AC510Board(), Request(address=0, payload_bytes=128, is_write=False, port=0)
    )
    assert 560 <= small.latency_ns <= 700
    assert 620 <= large.latency_ns <= 770
    assert large.latency_ns - small.latency_ns == pytest.approx(56, abs=35)


def test_ports_split_across_links_in_groups_of_five():
    board = AC510Board()
    controller = board.controller
    assert [controller.link_for_port(p) for p in range(9)] == [0] * 5 + [1] * 4


def test_outstanding_counting():
    board = AC510Board()
    request = Request(address=0, payload_bytes=16, is_write=False, port=0)
    board.controller.submit(request)
    assert board.controller.outstanding == 1
    board.sim.run()
    assert board.controller.outstanding == 0
    assert board.controller.submitted == 1
    assert board.controller.completed == 1


def test_flow_control_stop_and_resume():
    board = AC510Board()
    controller = board.controller
    threshold = board.calibration.flow_control_threshold
    controller.outstanding = threshold  # simulate a saturated controller
    assert not controller.can_generate
    woken = []
    controller.park_until_resume(lambda: woken.append(1))
    controller._maybe_resume_one()
    board.sim.run()
    assert not woken  # still at threshold
    controller.outstanding = threshold - 1
    controller._maybe_resume_one()
    board.sim.run()
    assert woken == [1]


def test_measurement_window_captures_only_window_traffic():
    board = AC510Board()
    # One completion before the window, one inside it.
    submit_and_run(board, Request(address=0, payload_bytes=16, is_write=False, port=0))
    board.controller.begin_measurement()
    submit_and_run(board, Request(address=64, payload_bytes=16, is_write=False, port=0))
    board.controller.end_measurement()
    assert board.controller.reads_completed_in_window == 1
    assert board.controller.traffic.events == 1
    assert board.controller.traffic.bytes == 48  # 16 B payload + 2 flits


def test_write_latency_sampled_separately():
    board = AC510Board()
    board.controller.begin_measurement()
    submit_and_run(board, Request(address=0, payload_bytes=16, is_write=True, port=0))
    board.controller.end_measurement()
    assert board.controller.writes_completed_in_window == 1
    assert board.controller.write_latency.stats.count == 1
    assert board.controller.read_latency.stats.count == 0


def test_completion_routed_to_registered_port_handler():
    board = AC510Board()
    got = []
    board.controller.register_port(4, got.append)
    request = Request(address=0, payload_bytes=16, is_write=False, port=4)
    submit_and_run(board, request)
    assert got == [request]


def test_bandwidth_property_uses_raw_bytes():
    board = AC510Board()
    board.controller.begin_measurement()
    submit_and_run(board, Request(address=0, payload_bytes=128, is_write=False, port=0))
    board.controller.end_measurement()
    window = board.controller.traffic.window_ns
    assert board.controller.bandwidth_gbs == pytest.approx(160.0 / window)


def test_completion_recorder_hook_sees_every_completion():
    from repro.sim.batch import CompletionRecorder

    board = AC510Board()
    recorder = CompletionRecorder()
    board.controller.recorder = recorder
    for i in range(3):
        submit_and_run(
            board,
            Request(address=i * 4096, payload_bytes=64, is_write=(i == 2), port=0),
        )
    board.controller.recorder = None
    submit_and_run(
        board, Request(address=5 * 4096, payload_bytes=64, is_write=False, port=0)
    )  # detached: not recorded
    assert len(recorder) == 3
    assert recorder.writes == [False, False, True]
    assert all(lat > 0 for lat in recorder.latencies)
    times, lats, writes, nbytes = recorder.arrays()
    assert times.shape == lats.shape == writes.shape == nbytes.shape == (3,)
    assert list(times) == sorted(times)


def test_controller_snapshot_tracks_window_counters():
    board = AC510Board()
    controller = board.controller
    submit_and_run(
        board, Request(address=0, payload_bytes=128, is_write=False, port=0)
    )
    controller.begin_measurement()
    submit_and_run(
        board, Request(address=4096, payload_bytes=128, is_write=True, port=0)
    )
    snap = controller.snapshot()
    assert snap["submitted"] == 2
    assert snap["completed"] == 2
    assert snap["outstanding"] == 0
    assert snap["window_events"] == 1
    assert snap["writes_completed_in_window"] == 1
    assert snap["reads_completed_in_window"] == 0


def test_end_measurement_at_closes_window_at_given_edge():
    board = AC510Board()
    controller = board.controller
    board.sim.run(until=100.0)
    controller.begin_measurement()
    board.sim.run(until=150.0)
    controller.end_measurement(at=600.0)
    # The window spans begin..at, not begin..now.
    assert controller.traffic.window_ns == pytest.approx(500.0)


def test_link_snapshot_and_token_low_water_reset():
    board = AC510Board()
    link = board.device.links[0]
    submit_and_run(
        board, Request(address=0, payload_bytes=128, is_write=False, port=0)
    )
    snap = link.snapshot()
    assert snap["tx_packets"] >= 1
    assert snap["tokens_low_water"] < snap["tokens_available"] or (
        snap["tokens_low_water"] == snap["tokens_available"]
    )
    assert link.tokens.low_water <= link.tokens.capacity
    drained_low = link.tokens.low_water
    assert drained_low < link.tokens.capacity  # the in-flight request dipped it
    link.reset_counters()
    assert link.tokens.low_water == link.tokens.available
    assert link.tokens.low_water >= drained_low
