"""Repository hygiene gates: no unused imports, no stray debug markers."""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: Names that legitimately appear "unused" to a syntactic scan.
ALLOWED_UNUSED = {"annotations"}


def iter_source_files():
    return sorted(SRC.rglob("*.py"))


def unused_imports(tree: ast.AST) -> set:
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    imported.add(alias.asname or alias.name)
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)  # __all__ entries and docstring refs
    return imported - used - ALLOWED_UNUSED


def test_no_unused_imports():
    offenders = {}
    for path in iter_source_files():
        unused = unused_imports(ast.parse(path.read_text()))
        if unused:
            offenders[str(path.relative_to(SRC))] = sorted(unused)
    assert offenders == {}


def test_no_debug_markers():
    markers = ("FIXME", "XXX:", "breakpoint(", "pdb.set_trace")
    offenders = []
    for path in iter_source_files():
        text = path.read_text()
        for marker in markers:
            if marker in text:
                offenders.append(f"{path.name}: {marker}")
    assert offenders == []


def test_every_module_has_a_docstring():
    missing = []
    for path in iter_source_files():
        tree = ast.parse(path.read_text())
        if not ast.get_docstring(tree):
            missing.append(str(path.relative_to(SRC)))
    assert missing == []


#: The experiment modules share one documented protocol (their package
#: docstring): ``run`` builds the structured result, ``check_shape``
#: verifies the paper's claims, ``main`` renders, and small result
#: dataclasses carry the rows.  Exempt that protocol from the per-item
#: docstring requirement.
EXPERIMENT_PROTOCOL = {
    "run",
    "main",
    "check_shape",
    "matches_paper",
    "mismatches",
    "field_position_errors",
    "cooling_power_errors",
}


def test_every_public_function_and_class_documented():
    undocumented = []
    for path in iter_source_files():
        in_experiments = "experiments" in path.parts
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if in_experiments and (
                    node.name in EXPERIMENT_PROTOCOL
                    or isinstance(node, ast.ClassDef)
                ):
                    continue
                if not ast.get_docstring(node):
                    undocumented.append(f"{path.name}:{node.name}")
    assert undocumented == []
