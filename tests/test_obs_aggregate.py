"""Fleet metrics aggregation math and the Prometheus exposition."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs import aggregate
from repro.obs import export as obs_export


def _counter(name, value, labels=None):
    return {
        "name": name,
        "type": "counter",
        "labels": labels or {},
        "value": value,
    }


def _gauge(name, value, labels=None):
    return {"name": name, "type": "gauge", "labels": labels or {}, "value": value}


def _histogram(name, buckets, total, count, labels=None):
    return {
        "name": name,
        "type": "histogram",
        "labels": labels or {},
        "buckets": dict(buckets),
        "sum": total,
        "count": count,
    }


# ------------------------------------------------------- merge math


def test_counters_with_identical_identity_sum():
    merged = aggregate.merge_series(
        [_counter("requests_total", 3), _counter("requests_total", 4)]
    )
    assert merged == [_counter("requests_total", 7)]


def test_different_labels_stay_separate_series():
    merged = aggregate.merge_series(
        [
            _counter("requests_total", 3, {"backend": "backend-0"}),
            _counter("requests_total", 4, {"backend": "backend-1"}),
        ]
    )
    assert [entry["value"] for entry in merged] == [3, 4]


def test_gauges_keep_the_last_value():
    merged = aggregate.merge_series(
        [_gauge("uptime_seconds", 10.0), _gauge("uptime_seconds", 99.0)]
    )
    assert merged[0]["value"] == 99.0


def test_histogram_merge_same_bounds_adds_cumulative_counts():
    merged = aggregate.merge_series(
        [
            _histogram("lat", {"0.1": 2, "+Inf": 5}, 1.0, 5),
            _histogram("lat", {"0.1": 1, "+Inf": 4}, 2.0, 4),
        ]
    )
    entry = merged[0]
    assert entry["buckets"] == {"0.1": 3.0, "+Inf": 9.0}
    assert entry["sum"] == 3.0
    assert entry["count"] == 9


def test_histogram_merge_unions_differing_bounds_preserving_totals():
    into = {"0.1": 2.0, "+Inf": 6.0}
    aggregate.merge_histogram_buckets(into, {"0.5": 3.0, "+Inf": 10.0})
    # Per-bin increments: into gives 0.1->2 and +Inf->4; other gives
    # 0.5->3 and +Inf->7.  Re-cumulated over the union of bounds that
    # is 2, 2+3=5, and 5+4+7=16 -- totals are 6 + 10, nothing lost.
    assert into == {"0.1": 2.0, "0.5": 5.0, "+Inf": 16.0}
    assert into["+Inf"] == 16.0  # no increments lost in the union


def test_label_series_does_not_clobber_existing_labels():
    labelled = aggregate.label_series(
        [
            _counter("fleet_requests_total", 1, {"backend": "backend-9"}),
            _counter("service_requests_total", 2),
        ],
        {"backend": "backend-0"},
    )
    assert labelled[0]["labels"] == {"backend": "backend-9"}
    assert labelled[1]["labels"] == {"backend": "backend-0"}


def test_fleet_snapshot_labels_sums_and_appends_extra_series():
    merged = aggregate.fleet_snapshot(
        {
            "backend-0": {"series": [_counter("service_requests_total", 5)]},
            "backend-1": {"series": [_counter("service_requests_total", 7)]},
        },
        extra_series=[_counter("fleet_requests_total", 12)],
    )
    by_name = {}
    for entry in merged["series"]:
        by_name.setdefault(entry["name"], []).append(entry)
    assert len(by_name["service_requests_total"]) == 2  # one per backend
    assert {
        entry["labels"]["backend"]
        for entry in by_name["service_requests_total"]
    } == {"backend-0", "backend-1"}
    assert by_name["fleet_requests_total"][0]["value"] == 12


# ------------------------------------------- Prometheus exposition


def test_prometheus_text_renders_counter_gauge_and_type_lines():
    text = obs_export.prometheus_text(
        {
            "series": [
                _counter("requests_total", 7, {"backend": "backend-0"}),
                _counter("requests_total", 9, {"backend": "backend-1"}),
                _gauge("uptime_seconds", 12.5),
            ]
        }
    )
    lines = text.splitlines()
    assert lines.count("# TYPE requests_total counter") == 1  # once per family
    assert 'requests_total{backend="backend-0"} 7' in lines
    assert 'requests_total{backend="backend-1"} 9' in lines
    assert "uptime_seconds 12.5" in lines
    assert text.endswith("\n")


def test_prometheus_text_histogram_conformance():
    text = obs_export.prometheus_text(
        {
            "series": [
                _histogram(
                    "latency_seconds",
                    {"+Inf": 5, "0.1": 2, "0.5": 4},
                    1.25,
                    5,
                )
            ]
        }
    )
    lines = text.splitlines()
    bucket_lines = [line for line in lines if "_bucket" in line]
    # Buckets sort by numeric bound with +Inf last, cumulative counts.
    assert bucket_lines == [
        'latency_seconds_bucket{le="0.1"} 2',
        'latency_seconds_bucket{le="0.5"} 4',
        'latency_seconds_bucket{le="+Inf"} 5',
    ]
    assert "latency_seconds_sum 1.25" in lines
    assert "latency_seconds_count 5" in lines
    assert "# TYPE latency_seconds histogram" in lines


def test_prometheus_label_escaping():
    text = obs_export.prometheus_text(
        {
            "series": [
                _gauge("g", 1, {"path": 'a\\b"c\nd'}),
            ]
        }
    )
    assert '{path="a\\\\b\\"c\\nd"}' in text


def test_prometheus_non_finite_values_spelled_out():
    text = obs_export.prometheus_text(
        {
            "series": [
                _gauge("g_nan", float("nan")),
                _gauge("g_inf", float("inf")),
            ]
        }
    )
    assert "g_nan NaN" in text
    assert "g_inf +Inf" in text


# -------------------------------------------------- scrape endpoint


def test_metrics_http_server_serves_and_recovers(tmp_path):
    calls = {"n": 0}

    def render() -> str:
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("registry busy")
        return "# TYPE up gauge\nup 1\n"

    scrape = obs_export.MetricsHTTPServer(render)
    port = scrape.start()
    try:
        url = f"http://127.0.0.1:{port}/metrics"
        with urllib.request.urlopen(url, timeout=5.0) as response:
            assert response.status == 200
            assert "version=0.0.4" in response.headers["Content-Type"]
            assert response.read().decode() == "# TYPE up gauge\nup 1\n"
        # A render failure answers 503 without killing the endpoint.
        with pytest.raises(urllib.error.HTTPError) as failure:
            urllib.request.urlopen(url, timeout=5.0)
        assert failure.value.code == 503
        assert b"scrape failed" in failure.value.read()
        with urllib.request.urlopen(url, timeout=5.0) as response:
            assert response.status == 200
        with pytest.raises(urllib.error.HTTPError) as missing:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/nope", timeout=5.0
            )
        assert missing.value.code == 404
    finally:
        scrape.stop()
    scrape.stop()  # idempotent
