"""Tests for the access-pattern factory (SIV-A), incl. properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core.patterns import (
    FIG6_MASK_POSITIONS,
    PATTERN_NAMES,
    eight_bit_mask,
    make_pattern,
    pattern_by_name,
    pattern_footprint,
    standard_patterns,
)
from repro.hmc.address import AddressMapping
from repro.hmc.config import HMC_1_0, HMC_1_1_4GB
from repro.hmc.errors import ConfigurationError

MAPPING = AddressMapping(HMC_1_1_4GB)


def test_standard_patterns_cover_paper_x_axis():
    patterns = standard_patterns()
    assert set(PATTERN_NAMES) == set(patterns)


@pytest.mark.parametrize(
    "name,vaults,banks",
    [
        ("1 bank", 1, 1),
        ("2 banks", 1, 2),
        ("8 banks", 1, 8),
        ("1 vault", 1, 16),
        ("4 vaults", 4, 64),
        ("16 vaults", 16, 256),
    ],
)
def test_pattern_footprints_enumerated(name, vaults, banks):
    pattern = pattern_by_name(name)
    footprint_vaults, footprint_banks = pattern_footprint(pattern.mask, MAPPING)
    assert footprint_vaults == vaults
    assert footprint_banks == banks
    assert pattern.total_banks == banks


def test_one_bank_mask_is_papers_7_14():
    pattern = pattern_by_name("1 bank")
    assert pattern.mask.clear == eight_bit_mask(7).clear


def test_16_vaults_is_identity_mask():
    assert pattern_by_name("16 vaults").mask.is_identity


def test_unknown_pattern_rejected():
    with pytest.raises(ConfigurationError):
        pattern_by_name("3 banks")


def test_bank_patterns_confined_to_one_vault():
    with pytest.raises(ConfigurationError):
        make_pattern(MAPPING, 2, 4)  # 4 banks across 2 vaults is not a paper pattern


def test_non_power_of_two_rejected():
    with pytest.raises(ConfigurationError):
        make_pattern(MAPPING, 3, 16)


def test_gen1_patterns_respect_smaller_geometry():
    patterns = standard_patterns(HMC_1_0)
    # Gen1 tops out at 8 banks/vault, so "8 banks" IS "1 vault" there.
    assert "8 banks" not in patterns
    assert "4 banks" in patterns
    assert "1 vault" in patterns
    mapping = AddressMapping(HMC_1_0)
    vaults, banks = pattern_footprint(patterns["1 vault"].mask, mapping)
    assert (vaults, banks) == (1, 8)


def test_fig6_mask_positions_match_paper():
    assert FIG6_MASK_POSITIONS[0] == ("24-31", 24)
    assert ("7-14", 7) in FIG6_MASK_POSITIONS
    assert FIG6_MASK_POSITIONS[-1] == ("0-7", 0)


def test_fig6_mask_7_14_hits_one_bank():
    vaults, banks = pattern_footprint(eight_bit_mask(7), MAPPING)
    assert (vaults, banks) == (1, 1)


def test_fig6_mask_3_10_hits_one_vault_all_banks():
    vaults, banks = pattern_footprint(eight_bit_mask(3), MAPPING)
    assert (vaults, banks) == (1, 16)


def test_fig6_mask_2_9_hits_two_vaults():
    vaults, _ = pattern_footprint(eight_bit_mask(2), MAPPING)
    assert vaults == 2


def test_fig6_high_mask_keeps_all_vaults():
    vaults, banks = pattern_footprint(eight_bit_mask(24), MAPPING)
    assert (vaults, banks) == (16, 256)


valid_footprints = st.sampled_from(
    [(1, b) for b in (1, 2, 4, 8, 16)] + [(v, 16) for v in (1, 2, 4, 8, 16)]
)


@given(valid_footprints)
def test_pattern_masks_enumerate_exactly_their_slice(footprint):
    vaults, banks = footprint
    pattern = make_pattern(MAPPING, vaults, banks)
    got_vaults, got_banks = pattern_footprint(pattern.mask, MAPPING)
    assert got_vaults == vaults
    assert got_banks == vaults * banks
