"""Trace exporters: breakdown, Perfetto JSON, NDJSON, profile agreement."""

from __future__ import annotations

import json

import pytest

from repro.obs import export as obs_export
from repro.obs.trace import STAGES, TraceContext


def _context(
    trace_id: int = 0,
    port: int = 0,
    is_write: bool = False,
    dram_ns: float = 40.0,
    rx_ns: float = 50.0,
) -> TraceContext:
    """A fully stamped synthetic read (or write) span."""
    context = TraceContext(
        trace_id, port=port, is_write=is_write, payload_bytes=128
    )
    context.submit_ns = 0.0
    context.tx_pipeline_ns = 10.0
    context.tx_start_ns = 12.0
    context.link_tx_done_ns = 20.0
    context.vault_arrival_ns = 30.0
    context.bank_start_ns = 35.0
    context.dram_done_ns = 35.0 + dram_ns
    context.rx_done_ns = 35.0 + dram_ns + rx_ns
    context.complete_ns = 35.0 + dram_ns + rx_ns + 5.0
    return context


# ----------------------------------------------------------------------
# breakdown
# ----------------------------------------------------------------------
def test_breakdown_aggregates_reads_only_by_default():
    contexts = [_context(0), _context(1), _context(2, is_write=True)]
    result = obs_export.breakdown(contexts)
    assert result.count == 2
    assert obs_export.breakdown(contexts, reads_only=False).count == 3


def test_breakdown_stage_means_sum_to_mean_rtt():
    contexts = [_context(0, dram_ns=40.0), _context(1, dram_ns=80.0)]
    result = obs_export.breakdown(contexts)
    covered = sum(result.mean_ns(stage) for stage in STAGES)
    assert covered == pytest.approx(result.latency.mean)
    assert sum(result.share(stage) for stage in STAGES) == pytest.approx(1.0)


def test_dominant_family_tracks_the_hot_stage():
    dram_bound = obs_export.breakdown([_context(dram_ns=500.0, rx_ns=10.0)])
    assert dram_bound.dominant_family() == "vault/DRAM"
    rx_bound = obs_export.breakdown([_context(dram_ns=10.0, rx_ns=500.0)])
    assert rx_bound.dominant_family() == "response link"


def test_render_report_lists_every_present_stage():
    report = obs_export.render_report(
        obs_export.breakdown([_context()]), title="synthetic"
    )
    assert "synthetic" in report
    assert "DRAM access + TSV bus" in report
    assert "1 sampled reads" in report


def test_render_report_on_empty_breakdown_says_so():
    report = obs_export.render_report(obs_export.breakdown([]))
    assert "no finished read spans" in report


# ----------------------------------------------------------------------
# Chrome/Perfetto trace_event document
# ----------------------------------------------------------------------
def test_chrome_trace_structure():
    contexts = [_context(0, port=1), _context(1, port=3, is_write=True)]
    document = obs_export.chrome_trace(contexts, label="unit")
    assert document["displayTimeUnit"] == "ns"
    events = document["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
    assert {e["tid"] for e in spans} == {1, 3}
    # timestamps are microseconds: the 10 ns TX pipeline span is 0.01 us
    first = min(spans, key=lambda e: e["ts"])
    assert first["ts"] == 0.0
    assert first["dur"] == pytest.approx(0.01)
    assert {e["cat"] for e in spans} == {"read", "write"}


def test_write_chrome_trace_counts_only_finished(tmp_path):
    unfinished = TraceContext(9)
    path = tmp_path / "trace.json"
    count = obs_export.write_chrome_trace(
        str(path), [_context(0), unfinished], label="unit"
    )
    assert count == 1
    document = json.loads(path.read_text())
    assert any(e["ph"] == "X" for e in document["traceEvents"])


# ----------------------------------------------------------------------
# span NDJSON round trip
# ----------------------------------------------------------------------
def test_spans_round_trip_through_ndjson(tmp_path):
    original = [_context(0), _context(1, is_write=True, dram_ns=7.5)]
    path = tmp_path / "spans.ndjson"
    assert obs_export.write_spans(str(path), original) == 2
    restored = obs_export.read_spans(str(path))
    for before, after in zip(original, restored):
        assert after.stamps() == before.stamps()
        assert after.trace_id == before.trace_id
        assert after.is_write == before.is_write
        assert after.payload_bytes == before.payload_bytes
        assert after.stage_durations() == before.stage_durations()


# ----------------------------------------------------------------------
# agreement with the analytic profiler
# ----------------------------------------------------------------------
def test_profile_station_families():
    assert obs_export.profile_station_family("link0 TX") == "request link"
    assert obs_export.profile_station_family("link2 RX") == "response link"
    assert obs_export.profile_station_family("vault3 TSV bus") == "vault/DRAM"
    assert obs_export.profile_station_family("vault0 bank7") == "vault/DRAM"
    assert obs_export.profile_station_family("link1 tokens") is None


def test_agreement_on_a_link_bound_point(tiny_settings):
    """The acceptance check: traced hotspot == profiled bottleneck family."""
    from repro.core.experiment import MeasurementPoint, simulate_point_traced
    from repro.core.profile import profile_workload

    point = MeasurementPoint(settings=tiny_settings, pattern_name="agree")
    _measurement, tracer = simulate_point_traced(point, sample=1)
    result = obs_export.breakdown(tracer.contexts)
    profiled = profile_workload(
        mask=point.mask,
        request_type=point.request_type,
        payload_bytes=point.payload_bytes,
        mode=point.mode,
        settings=point.settings,
    )
    agrees, detail = obs_export.agrees_with_profile(result, profiled)
    assert agrees, detail
