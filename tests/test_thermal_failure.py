"""Tests for the failure model and recovery procedure."""

import pytest

from repro.hmc.device import HMCDevice
from repro.hmc.errors import ThermalShutdownError
from repro.sim.engine import Simulator
from repro.thermal.failure import FailureModel, RecoveryProcedure, RecoveryStep

MODEL = FailureModel()


def test_read_bound_is_85():
    assert MODEL.threshold_c(0.0) == pytest.approx(85.0)


def test_write_bound_is_75():
    assert MODEL.threshold_c(1.0) == pytest.approx(75.0)
    assert MODEL.threshold_c(0.5) == pytest.approx(75.0)
    assert MODEL.threshold_c(0.25) == pytest.approx(75.0)


def test_threshold_interpolates_below_knee():
    mid = MODEL.threshold_c(0.125)
    assert 75.0 < mid < 85.0


def test_threshold_monotone_nonincreasing():
    values = [MODEL.threshold_c(f / 20) for f in range(21)]
    assert all(b <= a for a, b in zip(values, values[1:]))


def test_write_fraction_range_validated():
    with pytest.raises(ValueError):
        MODEL.threshold_c(1.5)


def test_paper_failure_scenarios():
    """ro at 80 degC survives; wo/rw at ~80 degC fail (SIV-C)."""
    assert MODEL.is_safe(80.0, 0.0)
    assert not MODEL.is_safe(80.0, 1.0)
    assert not MODEL.is_safe(80.0, 0.5)


def test_check_raises_with_context():
    with pytest.raises(ThermalShutdownError) as excinfo:
        MODEL.check(86.0, 0.0)
    error = excinfo.value
    assert error.surface_temp_c == 86.0
    assert error.threshold_c == pytest.approx(85.0)
    assert "data lost" in str(error)


def test_check_passes_below_threshold():
    MODEL.check(70.0, 1.0)  # no raise


# ----------------------------------------------------------------------
# recovery procedure
# ----------------------------------------------------------------------
def test_recovery_sequence_order():
    proc = RecoveryProcedure()
    seen = [proc.current_step]
    while not proc.complete:
        seen.append(proc.advance())
    assert seen == [
        RecoveryStep.COOL_DOWN,
        RecoveryStep.RESET_HMC,
        RecoveryStep.RESET_FPGA_TRANSCEIVERS,
        RecoveryStep.INITIALIZE,
        RecoveryStep.OPERATIONAL,
    ]


def test_recovery_loses_dram_contents():
    sim = Simulator()
    device = HMCDevice(sim)
    device.enable_data_store()
    device.store[0] = b"payload"
    proc = RecoveryProcedure(device)
    proc.run_all()
    assert proc.data_lost
    assert device.store == {}


def test_recovery_takes_meaningful_time():
    proc = RecoveryProcedure()
    total = proc.run_all()
    assert total > 60.0  # dominated by the cool-down
    assert len(proc.log) == 4


def test_advance_past_complete_raises():
    proc = RecoveryProcedure()
    proc.run_all()
    with pytest.raises(RuntimeError):
        proc.advance()
