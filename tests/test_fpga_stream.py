"""Tests for stream GUPS (low-load latency + data integrity)."""

import pytest

from repro.fpga.board import AC510Board
from repro.hmc.errors import ConfigurationError


def test_read_stream_returns_stats():
    board = AC510Board()
    stream = board.load_stream_gups()
    addresses = [i * 128 for i in range(8)]
    result = stream.run_read_stream(8, 128, addresses)
    assert result.num_requests == 8
    assert 0 < result.min_ns <= result.avg_ns <= result.max_ns


def test_single_pair_latency_near_no_load():
    board = AC510Board()
    stream = board.load_stream_gups()
    result = stream.run_read_stream(2, 16, [0, 4096])
    assert 600 <= result.min_ns <= 720  # paper: 655 ns at 16 B


def test_min_latency_flat_as_stream_deepens():
    deep_board = AC510Board()
    deep = deep_board.load_stream_gups().run_read_stream(
        24, 64, [i * 4096 for i in range(24)]
    )
    shallow_board = AC510Board()
    shallow = shallow_board.load_stream_gups().run_read_stream(2, 64, [0, 4096])
    assert deep.min_ns == pytest.approx(shallow.min_ns, rel=0.05)
    assert deep.max_ns > shallow.max_ns


def test_address_count_mismatch_rejected():
    board = AC510Board()
    stream = board.load_stream_gups()
    with pytest.raises(ConfigurationError):
        stream.run_read_stream(4, 128, [0])


def test_us_conversions():
    board = AC510Board()
    stream = board.load_stream_gups()
    result = stream.run_read_stream(2, 128, [0, 128])
    assert result.avg_us == pytest.approx(result.avg_ns / 1e3)
    assert result.min_us == pytest.approx(result.min_ns / 1e3)
    assert result.max_us == pytest.approx(result.max_ns / 1e3)


def test_data_integrity_write_then_read():
    """The paper: 'with stream GUPS, we also confirm the data integrity
    of our writes and reads'."""
    board = AC510Board()
    stream = board.load_stream_gups()
    addresses = [i * 256 for i in range(16)]
    assert stream.verify_write_read(addresses, 64)


def test_data_integrity_detects_corruption():
    from repro.hmc.packet import Request

    board = AC510Board()
    stream = board.load_stream_gups()
    assert stream.verify_write_read([0, 256], 32)
    # Corrupt the backing store behind the device's back, then re-read
    # with the original expectation: the check must flag the address.
    board.device.store[256] = b"\x00" * 32
    read = Request(address=256, payload_bytes=32, is_write=False, port=0)
    read.expected = (256).to_bytes(4, "little") * 8
    stream._outstanding += 1
    board.controller.submit(read)
    board.sim.run()
    assert 256 in stream._verify_failures
