"""Property-based tests of the end-to-end device invariants.

Hypothesis drives random request batches and model perturbations
through the full stack; whatever the mix, nothing may be lost,
reordered across a dependency, or accounted twice.
"""

import pytest
from hypothesis import HealthCheck, given, settings as hsettings, strategies as st

from repro.fpga.board import AC510Board
from repro.hmc.packet import Request, VALID_PAYLOAD_BYTES

payloads = st.sampled_from(VALID_PAYLOAD_BYTES)
request_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(4 << 30) - 1),  # address
        payloads,
        st.booleans(),  # is_write
        st.integers(min_value=0, max_value=8),  # port
    ),
    min_size=1,
    max_size=60,
)

SLOW = hsettings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def submit_batch(specs):
    board = AC510Board()
    completed = []
    for port in range(9):
        board.controller.register_port(port, completed.append)
    requests = []
    for i, (address, payload, is_write, port) in enumerate(specs):
        aligned = address // payload * payload
        request = Request(
            address=aligned, payload_bytes=payload, is_write=is_write, port=port
        )
        requests.append(request)
        board.sim.schedule(i * 2.0, board.controller.submit, request)
    board.sim.run()
    return board, requests, completed


@SLOW
@given(request_specs)
def test_every_request_completes_exactly_once(specs):
    board, requests, completed = submit_batch(specs)
    assert len(completed) == len(requests)
    assert {id(r) for r in completed} == {id(r) for r in requests}
    assert board.controller.outstanding == 0
    assert board.controller.submitted == board.controller.completed == len(specs)


@SLOW
@given(request_specs)
def test_latency_always_at_least_the_pipeline_floor(specs):
    board, requests, _ = submit_batch(specs)
    floor = board.calibration.tx_pipeline_ns(1) + board.calibration.rx_pipeline_ns(1)
    for request in requests:
        assert request.latency_ns > floor
        assert request.bank_start_ns >= request.vault_arrival_ns
        assert request.complete_ns > request.bank_start_ns


@SLOW
@given(request_specs)
def test_vault_accounting_conserves_requests(specs):
    board, requests, _ = submit_batch(specs)
    accepted = sum(v.requests_accepted for v in board.device.vaults)
    assert accepted == len(requests)
    accesses = sum(
        bank.accesses for vault in board.device.vaults for bank in vault.banks
    )
    assert accesses == len(requests)


@SLOW
@given(request_specs)
def test_raw_byte_accounting_matches_packet_model(specs):
    board, requests, _ = submit_batch(specs)
    expected = sum(r.raw_bytes for r in requests)
    assert board.controller.raw_bytes_total == expected


@SLOW
@given(request_specs, st.integers(min_value=0, max_value=2**31))
def test_fault_injection_never_loses_requests(specs, seed):
    from repro.faults import LinkFaultModel

    board = AC510Board()
    board.controller.fault_model = LinkFaultModel(
        flit_error_rate=0.05, seed=seed, max_retries=10000
    )
    completed = []
    for port in range(9):
        board.controller.register_port(port, completed.append)
    for i, (address, payload, is_write, port) in enumerate(specs):
        request = Request(
            address=address // payload * payload,
            payload_bytes=payload,
            is_write=is_write,
            port=port,
        )
        board.sim.schedule(i * 2.0, board.controller.submit, request)
    board.sim.run()
    assert len(completed) == len(specs)
    assert board.controller.outstanding == 0


@SLOW
@given(request_specs)
def test_tokens_fully_returned_after_drain(specs):
    board, _, _ = submit_batch(specs)
    for link in board.device.links:
        assert link.tokens.available == link.tokens.capacity
        assert link.tokens.waiting == 0
