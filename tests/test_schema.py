"""Round-trip and rejection tests for the versioned wire schema."""

import json
import math
import warnings

import pytest

from repro.core import schema
from repro.core.experiment import (
    BandwidthMeasurement,
    ExperimentSettings,
    MeasurementPoint,
)
from repro.fpga.address_gen import AddressingMode
from repro.hmc.address import AddressMask
from repro.hmc.config import HMC_1_1_2GB
from repro.hmc.packet import RequestType

TINY = ExperimentSettings(warmup_us=5.0, window_us=10.0)

MASKS = (
    AddressMask(),
    AddressMask(clear=0xFF0),
    AddressMask(set=0x30),
    AddressMask.clearing_bits(8, 15),
    AddressMask(clear=0xF00, set=0x0F),
)


@pytest.mark.parametrize("request_type", list(RequestType))
@pytest.mark.parametrize("mode", list(AddressingMode))
@pytest.mark.parametrize("mask", MASKS)
def test_point_round_trips_every_enum_and_mask_combination(
    request_type, mode, mask
):
    point = MeasurementPoint(
        mask=mask,
        request_type=request_type,
        payload_bytes=64,
        mode=mode,
        active_ports=5,
        settings=TINY,
        pattern_name="combo",
        seed=3,
    )
    payload = schema.point_to_dict(point)
    assert payload["schema"] == schema.SCHEMA_VERSION
    assert payload["request_type"] == request_type.name
    assert payload["mode"] == mode.name
    line = schema.dumps(payload)  # strict JSON must always succeed
    assert schema.point_from_dict(schema.loads(line)) == point


def test_point_methods_and_non_default_config_round_trip():
    settings = ExperimentSettings(config=HMC_1_1_2GB, warmup_us=1.0, window_us=2.0)
    point = MeasurementPoint(settings=settings, payload_bytes=32)
    assert MeasurementPoint.from_dict(point.to_dict()) == point
    assert ExperimentSettings.from_dict(settings.to_dict()) == settings
    mask = AddressMask(clear=0xF0)
    assert AddressMask.from_dict(mask.to_dict()) == mask


def _measurement(**overrides):
    fields = dict(
        pattern_name="16 vaults",
        request_type=RequestType.READ,
        payload_bytes=128,
        mode=AddressingMode.RANDOM,
        active_ports=9,
        bandwidth_gbs=21.5,
        mrps=160.25,
        reads_completed=1000,
        writes_completed=0,
        read_latency_avg_ns=700.5,
        read_latency_min_ns=650.0,
        read_latency_max_ns=820.0,
        write_latency_avg_ns=math.nan,
        window_ns=40000.0,
    )
    fields.update(overrides)
    return BandwidthMeasurement(**fields)


def test_measurement_round_trips_nan_latency_fields():
    measurement = _measurement(
        read_latency_avg_ns=math.nan,
        read_latency_min_ns=math.nan,
        read_latency_max_ns=math.nan,
        write_latency_avg_ns=math.nan,
    )
    payload = measurement.to_dict()
    # Strict JSON: NaN is encoded as a sentinel string, never a bare NaN.
    text = json.dumps(payload, allow_nan=False)
    restored = BandwidthMeasurement.from_dict(json.loads(text))
    assert repr(restored) == repr(measurement)
    assert math.isnan(restored.write_latency_avg_ns)


def test_measurement_round_trips_finite_floats_bit_exactly():
    measurement = _measurement(bandwidth_gbs=1.0 / 3.0, mrps=0.1 + 0.2)
    restored = BandwidthMeasurement.from_dict(
        json.loads(json.dumps(measurement.to_dict()))
    )
    assert restored == measurement


def test_nonfinite_float_encoding_round_trips():
    assert schema.encode_float(math.nan) == "NaN"
    assert schema.encode_float(math.inf) == "Infinity"
    assert schema.encode_float(-math.inf) == "-Infinity"
    assert math.isnan(schema.decode_float("NaN"))
    assert schema.decode_float("Infinity") == math.inf
    assert schema.decode_float("-Infinity") == -math.inf
    with pytest.raises(schema.SchemaError):
        schema.decode_float("fast")
    with pytest.raises(schema.SchemaError):
        schema.decode_float(None)


@pytest.mark.parametrize("version", [0, 2, "1", None, 99])
def test_unknown_schema_version_is_rejected(version):
    payload = schema.point_to_dict(MeasurementPoint(settings=TINY))
    payload["schema"] = version
    with pytest.raises(schema.SchemaError):
        schema.point_from_dict(payload)


def test_missing_version_and_wrong_kind_are_rejected():
    payload = schema.measurement_to_dict(_measurement())
    stripped = {k: v for k, v in payload.items() if k != "schema"}
    with pytest.raises(schema.SchemaError):
        schema.measurement_from_dict(stripped)
    with pytest.raises(schema.SchemaError):
        schema.point_from_dict(payload)  # kind mismatch
    with pytest.raises(schema.SchemaError):
        schema.loads("{not json")
    with pytest.raises(schema.SchemaError):
        schema.loads("[1, 2]")


def test_unknown_enum_name_is_rejected():
    payload = schema.point_to_dict(MeasurementPoint(settings=TINY))
    payload["request_type"] = "ro"  # the old by-value encoding
    with pytest.raises(schema.SchemaError):
        schema.point_from_dict(payload)


def test_overlapping_mask_payload_is_a_schema_error():
    payload = schema.mask_to_dict(AddressMask())
    payload["clear"] = 0xF0
    payload["set"] = 0x10
    with pytest.raises(schema.SchemaError):
        schema.mask_from_dict(payload)


def test_result_pair_round_trips():
    point = MeasurementPoint(settings=TINY, payload_bytes=48)
    measurement = _measurement(payload_bytes=48)
    payload = schema.loads(schema.dumps(schema.result_to_dict(point, measurement)))
    restored_point, restored_measurement = schema.result_from_dict(payload)
    assert restored_point == point
    assert repr(restored_measurement) == repr(measurement)


def test_removed_cache_serializer_aliases_are_gone():
    # The PR-2-era shims finished their deprecation cycle: the cache
    # module no longer re-exports the schema serializers and the shim
    # table in repro/__init__.py is empty.
    import repro
    from repro.core import cache as cache_mod

    assert not hasattr(cache_mod, "measurement_to_dict")
    assert not hasattr(cache_mod, "measurement_from_dict")
    assert repro._DEPRECATED == {}
    with pytest.raises(AttributeError):
        repro.measurement_to_dict


def test_curated_top_level_surface():
    import repro

    assert "MeasurementPoint" in repro.__all__
    assert repro.MeasurementPoint is MeasurementPoint
    assert repro.SCHEMA_VERSION == schema.SCHEMA_VERSION
    assert repro.RequestType is RequestType
    with pytest.raises(AttributeError):
        repro.definitely_not_public


def test_curated_surface_imports_warning_free():
    # Every curated __all__ name must resolve without emitting any
    # warning - the deprecation shims may not leak into the stable API.
    import importlib

    import repro

    subpackages = {
        name for name in repro.__all__ if name not in repro._PUBLIC
    }
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for name in repro.__all__:
            if name in subpackages:
                importlib.import_module(f"repro.{name}")
            else:
                getattr(repro, name)


def test_kernel_round_trips_and_default_stays_byte_identical():
    from dataclasses import replace

    batch_settings = replace(TINY, kernel="batch")
    payload = schema.settings_to_dict(batch_settings)
    assert payload["kernel"] == "batch"
    assert schema.settings_from_dict(payload) == batch_settings

    # The default DES payload must not grow a key: pre-kernel builds
    # (and their cache entries) decode it, and old payloads without the
    # key decode to the DES default.
    default_payload = schema.settings_to_dict(TINY)
    assert "kernel" not in default_payload
    assert schema.settings_from_dict(default_payload).kernel == "des"

    point = MeasurementPoint(settings=replace(TINY, kernel="auto"))
    assert schema.point_from_dict(point.to_dict()) == point
