"""Tests for the GUPS traffic generators."""

import pytest

from repro.fpga.address_gen import AddressingMode
from repro.fpga.board import AC510Board
from repro.fpga.gups import PortConfig
from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import RequestType


def run_gups(config, active_ports=None, duration_ns=20000.0):
    board = AC510Board()
    gups = board.load_gups(config, active_ports=active_ports)
    gups.start()
    board.sim.run(until=duration_ns)
    gups.stop()
    return board, gups


def test_read_only_issues_only_reads():
    board, gups = run_gups(PortConfig(request_type=RequestType.READ))
    assert gups.reads_issued > 0
    assert gups.writes_issued == 0


def test_write_only_issues_only_writes():
    board, gups = run_gups(PortConfig(request_type=RequestType.WRITE))
    assert gups.writes_issued > 0
    assert gups.reads_issued == 0


def test_rw_pairs_reads_with_writebacks():
    board, gups = run_gups(PortConfig(request_type=RequestType.READ_MODIFY_WRITE))
    assert gups.reads_issued > 0
    assert gups.writes_issued > 0
    # Writes trail reads but stay within the in-flight window.
    assert gups.writes_issued <= gups.reads_issued
    assert gups.reads_issued - gups.writes_issued < 700


def test_small_scale_activates_subset():
    board, gups = run_gups(PortConfig(), active_ports=2, duration_ns=5000.0)
    active = [p for p in gups.ports if p.reads_issued or p.writes_issued]
    assert {p.index for p in active} == {0, 1}


def test_active_ports_bounds():
    board = AC510Board()
    with pytest.raises(ConfigurationError):
        board.load_gups(PortConfig(), active_ports=0)
    with pytest.raises(ConfigurationError):
        board.load_gups(PortConfig(), active_ports=10)


def test_tag_pool_bounds_outstanding_reads():
    board, gups = run_gups(PortConfig(), active_ports=1, duration_ns=50000.0)
    port = gups.ports[0]
    assert port.read_tags.peak_in_use <= board.calibration.read_tag_pool_depth


def test_flow_control_bounds_total_outstanding():
    board, gups = run_gups(PortConfig(payload_bytes=128), duration_ns=100000.0)
    # Outstanding can exceed the stop threshold only by the in-flight
    # margin of nine ports reacting one cycle late.
    assert board.controller.outstanding <= board.calibration.flow_control_threshold + 9


def test_linear_ports_partition_address_space():
    board = AC510Board()
    gups = board.load_gups(PortConfig(mode=AddressingMode.LINEAR))
    starts = {port.generator.peek_many(1)[0] for port in gups.ports}
    assert len(starts) == len(gups.ports)


def test_random_ports_have_distinct_seeds():
    board = AC510Board()
    gups = board.load_gups(PortConfig(mode=AddressingMode.RANDOM, seed=5))
    first = [port.generator.peek_many(4) for port in gups.ports]
    assert len({tuple(f) for f in first}) == len(gups.ports)


def test_stopped_port_stops_issuing():
    board = AC510Board()
    gups = board.load_gups(PortConfig(), active_ports=1)
    gups.start()
    board.sim.run(until=2000.0)
    issued = gups.reads_issued
    gups.stop()
    board.sim.run()
    # In-flight work drains but no new requests are generated.
    assert gups.reads_issued <= issued + 1
    assert board.controller.outstanding == 0


def test_determinism_same_seed_same_traffic():
    def run_once():
        board, gups = run_gups(PortConfig(seed=11), duration_ns=30000.0)
        return (
            gups.reads_issued,
            board.controller.completed,
            board.sim.events_processed,
        )

    assert run_once() == run_once()
