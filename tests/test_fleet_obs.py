"""Fleet observability end to end: traced requests, fleet_metrics, SLOs.

In-process BackgroundService + BackgroundRouter (as in test_fleet.py)
with wire tracing switched on: one traced measure must leave a parented
client -> router -> backend span tree in the shared sink directory,
``fleet_metrics`` must answer the merged per-backend view through the
router, and the SLO watchdog must count breaches and surface them in
``fleet top``'s rendering.
"""

from __future__ import annotations

import pytest

from repro.core import parallel
from repro.core.experiment import ExperimentSettings, MeasurementPoint
from repro.core.patterns import pattern_by_name
from repro.fleet.client import FleetClient
from repro.fleet.router import BackgroundRouter
from repro.fleet.spec import BackendState, FleetSpec, FleetState
from repro.fleet.watch import SLOThresholds, evaluate_slo, render_top
from repro.hmc.packet import RequestType
from repro.obs import export as obs_export
from repro.obs import wiretrace
from repro.service.client import ServiceClient
from repro.service.server import BackgroundService


@pytest.fixture(autouse=True)
def _clean_tracing(monkeypatch):
    monkeypatch.delenv(wiretrace.TRACE_DIR_ENV, raising=False)
    monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
    wiretrace.reset()
    yield
    wiretrace.reset()


def _point(window_us: float):
    settings = ExperimentSettings(warmup_us=2.0, window_us=window_us)
    return MeasurementPoint.for_pattern(
        pattern_by_name("1 bank", settings.config),
        request_type=RequestType.READ,
        payload_bytes=32,
        settings=settings,
    )


def _state(backends, router_port=0, obs=None) -> FleetState:
    return FleetState(
        host="127.0.0.1",
        router_port=router_port,
        router_pid=0,
        backends=tuple(
            BackendState(
                name=name, host=host, port=port, pid=0, cache_dir="", log=""
            )
            for name, (host, port) in backends.items()
        ),
        obs=obs,
    )


def test_traced_measure_leaves_parented_three_service_tree(tmp_path):
    parallel.reset()
    wiretrace.configure(trace_dir=str(tmp_path), sample=1)
    point = _point(window_us=13.625)
    with BackgroundService(jobs=1, use_cache=False) as backend:
        backends = {"backend-0": ("127.0.0.1", backend.port)}
        with BackgroundRouter(backends) as router:
            with ServiceClient(host="127.0.0.1", port=router.port) as client:
                client.measure(point)
    spans = obs_export.load_wire_spans(str(tmp_path))
    by_service = {}
    for span in spans:
        by_service.setdefault(span.service, []).append(span)
    assert {"client", "router", "backend"} <= set(by_service)

    (client_span,) = by_service["client"]
    (serve,) = by_service["backend"]
    routes = [s for s in by_service["router"] if s.name == "route"]
    relays = [s for s in by_service["router"] if s.name == "relay"]
    queue_waits = [s for s in by_service["router"] if s.name == "queue_wait"]
    assert len(routes) == 1 and len(relays) == 1 and len(queue_waits) == 1

    # One trace, correctly parented at every hop.
    assert {s.trace_id for s in spans if s.trace_id} == {client_span.trace_id}
    assert routes[0].parent_id == client_span.span_id
    assert relays[0].parent_id == routes[0].span_id
    assert serve.parent_id == relays[0].span_id
    assert queue_waits[0].parent_id == relays[0].span_id
    assert routes[0].attrs["backend"] == "backend-0"
    assert serve.attrs["ok"] is True
    assert "cache_key" in serve.attrs

    # And the whole thing assembles into one Perfetto document.
    document = obs_export.assemble_trace(spans)
    names = {e["name"] for e in document["traceEvents"] if e.get("ph") == "X"}
    assert {"measure", "route", "relay", "serve", "queue_wait"} <= names


def test_untraced_fleet_roundtrip_writes_no_spans(tmp_path):
    parallel.reset()
    wiretrace.configure(trace_dir=str(tmp_path))  # dir set, sampling off
    point = _point(window_us=13.875)
    with BackgroundService(jobs=1, use_cache=False) as backend:
        backends = {"backend-0": ("127.0.0.1", backend.port)}
        with BackgroundRouter(backends) as router:
            with ServiceClient(host="127.0.0.1", port=router.port) as client:
                client.measure(point)
    assert list(tmp_path.glob("spans-*.ndjson")) == []


def test_fleet_metrics_verb_merges_backends_with_labels():
    parallel.reset()
    points = [_point(window_us=w) for w in (14.125, 14.375)]
    services = [BackgroundService(jobs=1, use_cache=False) for _ in range(2)]
    try:
        backends = {
            f"backend-{i}": ("127.0.0.1", service.start())
            for i, service in enumerate(services)
        }
        with BackgroundRouter(backends) as router:
            state = _state(backends, router_port=router.port)
            with FleetClient(state=state) as client:
                client.measure_many(points)
                merged = client.fleet_metrics()
    finally:
        for service in services:
            service.stop()
    series = merged["series"]
    measure_counters = [
        entry
        for entry in series
        if entry["name"] == "service_measure_requests_total"
        and "backend" in entry["labels"]
    ]
    # One labelled series per backend.  (The in-process fixture shares a
    # single registry between both services, so each backend's snapshot
    # reports the combined count rather than a disjoint share.)
    assert {entry["labels"]["backend"] for entry in measure_counters} == {
        "backend-0",
        "backend-1",
    }
    assert all(entry["value"] == len(points) for entry in measure_counters)
    # The router's own pre-labelled families join the merged view.
    assert any(entry["name"] == "fleet_requests_total" for entry in series)
    # And the whole snapshot renders as valid exposition text.
    text = obs_export.prometheus_text(merged)
    assert "# TYPE service_measure_requests_total counter" in text


def test_single_daemon_rejects_fleet_metrics_verb():
    from repro.service.protocol import ServiceError

    with BackgroundService(jobs=1, use_cache=False) as backend:
        with ServiceClient(host="127.0.0.1", port=backend.port) as client:
            with pytest.raises(ServiceError, match="fleet-router verb"):
                client.fleet_metrics()


def test_direct_mode_client_aggregates_like_the_router():
    parallel.reset()
    point = _point(window_us=14.625)
    with BackgroundService(jobs=1, use_cache=False) as backend:
        backends = {"backend-0": ("127.0.0.1", backend.port)}
        state = _state(backends)
        with FleetClient(state=state, via="direct") as client:
            client.measure(point)
            merged = client.fleet_metrics()
    entries = [
        entry
        for entry in merged["series"]
        if entry["name"] == "service_measure_requests_total"
    ]
    assert entries and entries[0]["labels"]["backend"] == "backend-0"


def test_fleet_client_adopts_persisted_obs_config(tmp_path):
    state = _state(
        {"backend-0": ("127.0.0.1", 1)},
        obs={"trace_sample": 4, "trace_dir": str(tmp_path), "log_level": "info"},
    )
    FleetClient(state=state).close()
    assert wiretrace.active_dir() == str(tmp_path)
    assert wiretrace.active_sample() == 4


def test_fleet_client_obs_adoption_never_overrides_explicit_config(tmp_path):
    wiretrace.configure(trace_dir=str(tmp_path / "mine"), sample=2)
    state = _state(
        {"backend-0": ("127.0.0.1", 1)},
        obs={
            "trace_sample": 64,
            "trace_dir": str(tmp_path / "fleet"),
            "log_level": "info",
        },
    )
    FleetClient(state=state).close()
    assert wiretrace.active_dir() == str(tmp_path / "mine")
    assert wiretrace.active_sample() == 2


def test_fleet_spec_obs_config_round_trips_through_state():
    spec = FleetSpec(backends=2, trace_sample=8, log_level="debug")
    obs = spec.obs_config()
    assert obs["trace_sample"] == 8
    assert obs["trace_dir"].endswith("trace")
    assert set(obs["event_logs"]) == {"backend-0", "backend-1", "router"}
    state = _state({"backend-0": ("127.0.0.1", 1)}, obs=obs)
    restored = FleetState.from_dict(state.to_dict())
    assert restored.obs == obs


def test_untraced_spec_obs_config_has_no_trace_dir():
    assert FleetSpec().obs_config()["trace_dir"] is None


# ---------------------------------------------------- SLO watchdog


def _stats(p95_ms, count=20, requests=20, failovers=0):
    return {
        "router": {
            "uptime_s": 1.0,
            "requests": requests,
            "failovers": failovers,
            "errors": 0,
            "slo_breaches": 0,
        },
        "ring": {"nodes": ["backend-0"], "replicas": 64, "rebalances": 0},
        "backends": {
            "backend-0": {
                "alive": True,
                "inflight": 0,
                "requests": requests,
                "failovers": failovers,
                "latency": {"count": count, "p50_ms": 1.0, "p95_ms": p95_ms},
            }
        },
    }


def test_evaluate_slo_flags_p95_and_failover_rate():
    thresholds = SLOThresholds(p95_ms=10.0, failover_rate=0.25)
    breaches = evaluate_slo(
        _stats(p95_ms=50.0, requests=10, failovers=10), thresholds
    )
    assert [b["slo"] for b in breaches] == ["p95_latency", "failover_rate"]
    assert breaches[0]["value"] == 50.0
    assert breaches[1]["value"] == 0.5


def test_evaluate_slo_respects_min_requests_warmup():
    thresholds = SLOThresholds(p95_ms=10.0, failover_rate=0.25)
    quiet = _stats(p95_ms=50.0, count=2, requests=2, failovers=2)
    assert evaluate_slo(quiet, thresholds) == []


def test_evaluate_slo_disabled_thresholds_never_breach():
    assert not SLOThresholds().enabled
    assert evaluate_slo(_stats(p95_ms=9999.0), SLOThresholds()) == []


def test_router_check_slo_counts_breaches_into_registry():
    parallel.reset()
    point = _point(window_us=14.875)
    with BackgroundService(jobs=1, use_cache=False) as backend:
        backends = {"backend-0": ("127.0.0.1", backend.port)}
        slo = SLOThresholds(p95_ms=0.0001, min_requests=1)
        with BackgroundRouter(backends, slo=slo) as router:
            state = _state(backends, router_port=router.port)
            with FleetClient(state=state) as client:
                client.measure(point)
                breaches = router.router.check_slo()
                stats = client.stats()
    assert breaches and breaches[0]["slo"] == "p95_latency"
    assert stats["router"]["slo_breaches"] >= 1


def test_render_top_table_flags_breaching_backends():
    stats = _stats(p95_ms=42.0)
    breaches = evaluate_slo(stats, SLOThresholds(p95_ms=10.0))
    text = render_top(stats, breaches)
    assert "backend-0!" in text
    assert "SLO BREACH [p95_latency] backend-0: 42.0 > 10.0" in text
    assert "1 backend(s)" in text
    clean = render_top(_stats(p95_ms=1.0))
    assert "!" not in clean
