"""Tests for the sweep runner and CSV export."""

import math

import pytest

from repro.core.sweeps import FIELDS, SweepGrid, load_csv, run_sweep, to_csv
from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import RequestType


def small_grid():
    return SweepGrid(
        patterns=("2 banks", "16 vaults"),
        request_types=(RequestType.READ, RequestType.WRITE),
        payload_bytes=(32, 128),
        active_ports=(None,),
    )


def test_grid_size_and_points():
    grid = small_grid()
    assert grid.size == 8
    assert len(list(grid.points())) == 8


def test_grid_validation():
    with pytest.raises(ConfigurationError):
        SweepGrid(patterns=())


def test_run_sweep_produces_one_record_per_point(tiny_settings):
    records = run_sweep(small_grid(), settings=tiny_settings)
    assert len(records) == 8
    for record in records:
        assert set(FIELDS) <= set(record)
        assert record["bandwidth_gbs"] > 0


def test_sweep_records_consistent_with_workload(tiny_settings):
    records = run_sweep(small_grid(), settings=tiny_settings)
    by_key = {
        (r["pattern"], r["request_type"], r["payload_bytes"]): r for r in records
    }
    assert by_key[("16 vaults", "ro", 128)]["bandwidth_gbs"] > by_key[
        ("2 banks", "ro", 128)
    ]["bandwidth_gbs"]
    assert by_key[("16 vaults", "wo", 128)]["write_fraction"] == 1.0
    assert math.isnan(by_key[("16 vaults", "wo", 128)]["read_latency_avg_ns"])


def test_csv_roundtrip(tiny_settings, tmp_path):
    records = run_sweep(
        SweepGrid(patterns=("16 vaults",), payload_bytes=(128,)),
        settings=tiny_settings,
    )
    path = tmp_path / "sweep.csv"
    text = to_csv(records, path)
    assert text.splitlines()[0] == ",".join(FIELDS)
    loaded = load_csv(path)
    assert len(loaded) == 1
    assert loaded[0]["pattern"] == "16 vaults"
    assert float(loaded[0]["bandwidth_gbs"]) == pytest.approx(
        records[0]["bandwidth_gbs"]
    )


def test_csv_without_file(tiny_settings):
    records = run_sweep(
        SweepGrid(patterns=("2 banks",)), settings=tiny_settings
    )
    text = to_csv(records)
    assert "2 banks" in text
