"""Tests for the experiment runners (simulation-backed)."""

import math

import pytest

from repro.core.experiment import (
    ExperimentSettings,
    measure_bandwidth,
    measure_bandwidth_cached,
    measure_pattern,
    run_latency_sweep,
    run_stream_latency,
    run_thermal_experiment,
)
from repro.core.patterns import pattern_by_name
from repro.fpga.address_gen import AddressingMode
from repro.hmc.packet import RequestType
from repro.thermal.cooling import CFG1, CFG4


def test_measurement_fields_populated(tiny_settings):
    m = measure_bandwidth(settings=tiny_settings)
    assert m.bandwidth_gbs > 0
    assert m.mrps > 0
    assert m.reads_completed > 0
    assert m.writes_completed == 0
    assert m.write_fraction == 0.0
    assert m.read_latency_min_ns <= m.read_latency_avg_ns <= m.read_latency_max_ns
    assert m.window_ns == pytest.approx(tiny_settings.window_us * 1e3)
    assert math.isnan(m.write_latency_avg_ns)


def test_bandwidth_counts_raw_bytes(tiny_settings):
    """BW(GB/s) must equal completions x raw bytes / window."""
    m = measure_bandwidth(settings=tiny_settings, payload_bytes=128)
    expected = m.total_completed * 160.0 / m.window_ns
    assert m.bandwidth_gbs == pytest.approx(expected, rel=1e-6)


def test_write_only_measurement(tiny_settings):
    m = measure_bandwidth(request_type=RequestType.WRITE, settings=tiny_settings)
    assert m.writes_completed > 0 and m.reads_completed == 0
    assert m.write_fraction == 1.0
    assert m.write_latency_avg_ns > 0


def test_rw_measurement_balanced(tiny_settings):
    m = measure_bandwidth(
        request_type=RequestType.READ_MODIFY_WRITE, settings=tiny_settings
    )
    assert m.reads_completed > 0 and m.writes_completed > 0
    assert abs(m.write_fraction - 0.5) < 0.1


def test_measure_pattern_carries_name(tiny_settings):
    pattern = pattern_by_name("2 banks")
    m = measure_pattern(pattern, settings=tiny_settings)
    assert m.pattern_name == "2 banks"


def test_determinism(tiny_settings):
    a = measure_bandwidth(settings=tiny_settings, seed=3)
    b = measure_bandwidth(settings=tiny_settings, seed=3)
    assert a == b


def test_linear_mode_runs(tiny_settings):
    m = measure_bandwidth(mode=AddressingMode.LINEAR, settings=tiny_settings)
    assert m.bandwidth_gbs > 0


def test_cache_returns_identical_object(tiny_settings):
    pattern = pattern_by_name("4 banks")
    a = measure_bandwidth_cached(pattern, settings=tiny_settings)
    b = measure_bandwidth_cached(pattern, settings=tiny_settings)
    assert a is b


def test_settings_scaled():
    s = ExperimentSettings(warmup_us=30.0, window_us=120.0).scaled(0.5)
    assert s.warmup_us == 15.0
    assert s.window_us == 60.0


def test_latency_sweep_monotone_bandwidth(tiny_settings):
    pattern = pattern_by_name("16 vaults")
    points = run_latency_sweep(
        pattern, 128, settings=tiny_settings, port_counts=(1, 4, 9)
    )
    assert [p.active_ports for p in points] == [1, 4, 9]
    bws = [p.bandwidth_gbs for p in points]
    assert bws[0] <= bws[1] * 1.05 and bws[1] <= bws[2] * 1.05


def test_stream_latency_aggregates_trials(tiny_settings):
    result = run_stream_latency(4, 32, settings=tiny_settings, trials=3)
    assert result.num_requests == 4
    assert result.min_ns <= result.avg_ns <= result.max_ns


def test_thermal_experiment_safe_and_failing(tiny_settings):
    pattern = pattern_by_name("16 vaults")
    safe = run_thermal_experiment(
        pattern, RequestType.READ, CFG1, settings=tiny_settings
    )
    assert not safe.failed
    assert safe.operating_point.surface_c > CFG1.idle_surface_c
    hot = run_thermal_experiment(
        pattern, RequestType.WRITE, CFG4, settings=tiny_settings
    )
    assert hot.failed


def test_thermal_readings_transient(tiny_settings):
    pattern = pattern_by_name("16 vaults")
    result = run_thermal_experiment(
        pattern, RequestType.READ, CFG1, settings=tiny_settings, duration_s=200.0
    )
    temps = [r.surface_c for r in result.readings]
    assert temps[0] == pytest.approx(CFG1.idle_surface_c, abs=0.2)
    assert all(b >= a - 0.11 for a, b in zip(temps, temps[1:]))
    assert temps[-1] == pytest.approx(result.operating_point.surface_c, abs=0.3)
