"""Tests for the GUPS address generators, incl. hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.fpga.address_gen import AddressGenerator, AddressingMode
from repro.hmc.address import AddressMask
from repro.hmc.errors import ConfigurationError

CAPACITY = 4 << 30
payload_sizes = st.sampled_from((16, 32, 48, 64, 80, 96, 112, 128))


def test_linear_walks_by_container_stride():
    gen = AddressGenerator(CAPACITY, 128, AddressingMode.LINEAR)
    assert [gen.next() for _ in range(3)] == [0, 128, 256]


def test_linear_nonpow2_request_uses_container():
    gen = AddressGenerator(CAPACITY, 112, AddressingMode.LINEAR)
    assert gen.stride == 128
    assert [gen.next() for _ in range(3)] == [0, 128, 256]


def test_linear_wraps_at_capacity():
    gen = AddressGenerator(
        CAPACITY, 128, AddressingMode.LINEAR, start=CAPACITY - 128
    )
    assert gen.next() == CAPACITY - 128
    assert gen.next() == 0


def test_random_is_deterministic_per_seed():
    a = AddressGenerator(CAPACITY, 128, AddressingMode.RANDOM, seed=3)
    b = AddressGenerator(CAPACITY, 128, AddressingMode.RANDOM, seed=3)
    c = AddressGenerator(CAPACITY, 128, AddressingMode.RANDOM, seed=4)
    sa = [a.next() for _ in range(50)]
    assert sa == [b.next() for _ in range(50)]
    assert sa != [c.next() for _ in range(50)]


@given(payload_sizes, st.integers(min_value=0, max_value=2**31))
def test_random_addresses_aligned_and_in_range(payload, seed):
    gen = AddressGenerator(CAPACITY, payload, AddressingMode.RANDOM, seed=seed)
    for _ in range(20):
        address = gen.next()
        assert 0 <= address < CAPACITY
        assert address % gen.stride == 0


@given(payload_sizes)
def test_mask_applied_to_generated_addresses(payload):
    mask = AddressMask.clearing_bits(7, 14)
    gen = AddressGenerator(CAPACITY, payload, AddressingMode.RANDOM, mask=mask, seed=1)
    for _ in range(20):
        assert gen.next() & 0x7F80 == 0


def test_anti_mask_sets_bits():
    mask = AddressMask(set=1 << 7)
    gen = AddressGenerator(CAPACITY, 128, AddressingMode.RANDOM, mask=mask, seed=1)
    for _ in range(10):
        assert gen.next() & (1 << 7)


def test_peek_many_restores_state():
    gen = AddressGenerator(CAPACITY, 128, AddressingMode.RANDOM, seed=9)
    preview = gen.peek_many(5)
    assert [gen.next() for _ in range(5)] == preview
    lin = AddressGenerator(CAPACITY, 128, AddressingMode.LINEAR)
    assert lin.peek_many(3) == [0, 128, 256]
    assert lin.next() == 0


def test_misaligned_start_snaps_down():
    gen = AddressGenerator(CAPACITY, 128, AddressingMode.LINEAR, start=200)
    assert gen.next() == 128


def test_validation():
    with pytest.raises(ConfigurationError):
        AddressGenerator(1000, 128)  # capacity not a power of two
    with pytest.raises(ConfigurationError):
        AddressGenerator(CAPACITY, 0)


def test_mode_labels():
    assert AddressingMode.from_label("linear") is AddressingMode.LINEAR
    assert AddressingMode.from_label("random") is AddressingMode.RANDOM
    with pytest.raises(ValueError):
        AddressingMode.from_label("stride")
