"""Shared fixtures: small simulation windows so the suite stays fast."""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentSettings


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Keep the suite hermetic: never read or write the user's on-disk
    measurement cache (stale entries would mask model changes)."""
    import os

    saved = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if saved is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = saved


@pytest.fixture(scope="session")
def fast_settings() -> ExperimentSettings:
    """Short steady-state window; enough traffic for shape assertions."""
    return ExperimentSettings(warmup_us=10.0, window_us=40.0)


@pytest.fixture(scope="session")
def tiny_settings() -> ExperimentSettings:
    """Minimal window for tests that only need the machinery to run."""
    return ExperimentSettings(warmup_us=5.0, window_us=15.0)
