"""Integration tests: the paper's headline behaviours end-to-end.

These run the full stack (GUPS ports -> controller -> links -> quadrants
-> vaults -> banks -> back) at reduced windows and assert the *shape*
results the reproduction is calibrated to.
"""

import pytest

from repro.core.experiment import (
    measure_bandwidth,
    measure_bandwidth_cached,
    run_stream_latency,
)
from repro.core.patterns import pattern_by_name
from repro.fpga.address_gen import AddressingMode
from repro.hmc.packet import RequestType


def test_request_type_ordering_rw_ro_wo(fast_settings):
    """Fig. 7: rw > ro > wo for distributed 128 B accesses."""
    bw = {
        rt: measure_bandwidth(
            request_type=rt, payload_bytes=128, settings=fast_settings
        ).bandwidth_gbs
        for rt in RequestType
    }
    assert bw[RequestType.READ_MODIFY_WRITE] > bw[RequestType.READ]
    assert bw[RequestType.READ] > bw[RequestType.WRITE]
    ratio = bw[RequestType.READ_MODIFY_WRITE] / bw[RequestType.WRITE]
    assert 1.4 <= ratio <= 2.6  # "roughly double"


def test_vault_bandwidth_cap(fast_settings):
    """SIV-A/B: one vault is limited to ~10 GB/s internally; the raw
    number includes packet overhead (x160/128 for reads)."""
    one_vault = measure_bandwidth_cached(
        pattern_by_name("1 vault"), settings=fast_settings
    )
    assert one_vault.bandwidth_gbs == pytest.approx(12.5, abs=1.0)
    eight_banks = measure_bandwidth_cached(
        pattern_by_name("8 banks"), settings=fast_settings
    )
    assert eight_banks.bandwidth_gbs == pytest.approx(
        one_vault.bandwidth_gbs, rel=0.05
    )


def test_bank_scaling_doubles(fast_settings):
    bws = [
        measure_bandwidth_cached(
            pattern_by_name(name), settings=fast_settings
        ).bandwidth_gbs
        for name in ("1 bank", "2 banks", "4 banks")
    ]
    assert bws[1] / bws[0] == pytest.approx(2.0, rel=0.15)
    assert bws[2] / bws[1] == pytest.approx(2.0, rel=0.15)


def test_distributed_reads_near_paper_bandwidth(fast_settings):
    m = measure_bandwidth(payload_bytes=128, settings=fast_settings)
    assert 17.0 <= m.bandwidth_gbs <= 25.0  # paper ~22 GB/s


def test_high_load_latency_extremes(fast_settings):
    """Fig. 16: ~24 us for 1-bank 128 B, ~2 us for 16-vault 32 B."""
    worst = measure_bandwidth_cached(
        pattern_by_name("1 bank"), payload_bytes=128, settings=fast_settings
    )
    best = measure_bandwidth_cached(
        pattern_by_name("16 vaults"), payload_bytes=32, settings=fast_settings
    )
    assert 15000 <= worst.read_latency_avg_ns <= 35000
    assert 1200 <= best.read_latency_avg_ns <= 3000
    assert worst.read_latency_avg_ns / best.read_latency_avg_ns > 8


def test_low_load_vs_high_load_latency_gap(fast_settings):
    """SIV-E3: high-load latency ~12x the low-load latency."""
    low = run_stream_latency(4, 128, settings=fast_settings, trials=3)
    high = measure_bandwidth(payload_bytes=128, settings=fast_settings)
    assert high.read_latency_avg_ns / low.avg_ns > 2.5


def test_closed_page_linear_equals_random(fast_settings):
    linear = measure_bandwidth(mode=AddressingMode.LINEAR, settings=fast_settings)
    random_ = measure_bandwidth(mode=AddressingMode.RANDOM, settings=fast_settings)
    assert linear.bandwidth_gbs == pytest.approx(random_.bandwidth_gbs, rel=0.1)


def test_small_requests_double_request_rate(fast_settings):
    small = measure_bandwidth(payload_bytes=32, settings=fast_settings)
    large = measure_bandwidth(payload_bytes=128, settings=fast_settings)
    assert small.mrps / large.mrps > 1.4
    assert small.bandwidth_gbs < large.bandwidth_gbs


def test_no_load_latency_against_paper(fast_settings):
    small = run_stream_latency(2, 16, settings=fast_settings, trials=4)
    large = run_stream_latency(2, 128, settings=fast_settings, trials=4)
    assert small.min_ns == pytest.approx(655.0, abs=40.0)
    assert large.min_ns == pytest.approx(711.0, abs=50.0)


def test_conservation_no_lost_requests(fast_settings):
    """Closed-loop sanity: nothing is dropped or double-counted."""
    from repro.fpga.board import AC510Board
    from repro.fpga.gups import PortConfig

    board = AC510Board()
    gups = board.load_gups(PortConfig(request_type=RequestType.READ_MODIFY_WRITE))
    gups.start()
    board.sim.run(until=30000.0)
    gups.stop()
    board.sim.run()  # drain
    controller = board.controller
    assert controller.submitted == controller.completed
    assert controller.outstanding == 0
    assert gups.reads_issued + gups.writes_issued == controller.submitted
