"""Tests for the host-side (Pico API / EX700) models."""

import pytest

from repro.core.experiment import measure_bandwidth
from repro.fpga.host import EX700Config, PicoApiConfig, PicoHost
from repro.hmc.errors import ConfigurationError


def test_ex700_aggregate_capped_by_host_link():
    backplane = EX700Config()
    assert backplane.aggregate_module_gbs(1) == pytest.approx(7.88)
    assert backplane.aggregate_module_gbs(4) == pytest.approx(31.52)
    assert backplane.aggregate_module_gbs(6) == pytest.approx(32.0)  # x16 cap


def test_ex700_module_count_validated():
    with pytest.raises(ConfigurationError):
        EX700Config().aggregate_module_gbs(0)
    with pytest.raises(ConfigurationError):
        EX700Config().aggregate_module_gbs(7)


def test_software_reads_complete_and_account():
    host = PicoHost()
    result = host.software_read_sweep(20, payload_bytes=128)
    assert result.operations == 20
    assert result.hmc_rtt_avg_ns > 600  # the HMC round trip is in there
    assert result.per_operation_us > 2.0  # dominated by driver overhead


def test_software_path_lacks_sufficient_speed(tiny_settings):
    """The paper's §III-B claim: software cannot measure HMC bandwidth."""
    software = PicoHost().software_read_sweep(20, payload_bytes=128)
    gups = measure_bandwidth(payload_bytes=128, settings=tiny_settings)
    assert software.bandwidth_gbs < 0.1
    assert gups.bandwidth_gbs / software.bandwidth_gbs > 100


def test_driver_overhead_dominates_elapsed():
    api = PicoApiConfig(driver_overhead_us=10.0)
    result = PicoHost(api=api).software_read_sweep(5, payload_bytes=16)
    assert result.per_operation_us == pytest.approx(10.0, rel=0.2)


def test_software_read_validation():
    host = PicoHost()
    with pytest.raises(ConfigurationError):
        host.software_read_sweep(0)
    with pytest.raises(ConfigurationError):
        host.software_read_sweep(5, payload_bytes=100)
