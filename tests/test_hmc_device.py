"""Tests for the assembled HMC device."""

import pytest

from repro.hmc.calibration import Calibration
from repro.hmc.config import HMC_1_1_4GB, HMC_2_0_4GB
from repro.hmc.device import HMCDevice
from repro.hmc.errors import ConfigurationError
from repro.hmc.packet import Request
from repro.sim.engine import Simulator

CAL = Calibration()


def make_device(sim, config=HMC_1_1_4GB):
    device = HMCDevice(sim, config=config)
    done = []
    device.on_response = lambda req, t: done.append((req, t))
    return device, done


def submit(device, request, arrival_ns=0.0):
    """Acquire the link tokens the controller normally holds, then submit."""
    device.links[request.link].tokens.acquire(request.request_flits, lambda: None)
    device.submit_from_link(request, arrival_ns)


def test_structure_matches_config():
    sim = Simulator()
    device, _ = make_device(sim)
    assert len(device.vaults) == 16
    assert len(device.links) == 2
    assert len(device.vaults[0].banks) == 16
    hmc2, _ = make_device(Simulator(), HMC_2_0_4GB)
    assert len(hmc2.vaults) == 32
    assert len(hmc2.links) == 4


def test_link_quadrant_attachment():
    sim = Simulator()
    device, _ = make_device(sim)
    assert device.link_quadrant(0) == 0
    assert device.link_quadrant(1) == 1


def test_remote_quadrant_costs_more():
    sim = Simulator()
    device, _ = make_device(sim)
    local = device.route_delay_ns(0, 0)
    remote = device.route_delay_ns(0, 2)
    assert remote == pytest.approx(local + CAL.quadrant_route_remote_ns)


def test_request_roundtrip_through_device():
    sim = Simulator()
    device, done = make_device(sim)
    request = Request(address=0, payload_bytes=128, is_write=False, port=0)
    submit(device, request)
    sim.run()
    assert len(done) == 1
    req, rx_done = done[0]
    assert req is request
    assert request.vault_arrival_ns > 0
    assert request.bank_start_ns >= request.vault_arrival_ns
    assert rx_done > request.bank_start_ns


def test_local_vault_faster_than_remote():
    def roundtrip(vault):
        sim = Simulator()
        device, done = make_device(sim)
        address = device.mapping.encode(vault, 0)
        request = Request(address=address, payload_bytes=16, is_write=False, port=0)
        submit(device, request)
        sim.run()
        return done[0][1]

    assert roundtrip(0) < roundtrip(15)  # vault 15 is quadrant 3: remote to link 0


def test_tokens_returned_after_accept():
    sim = Simulator()
    device, _ = make_device(sim)
    link = device.links[0]
    flits = 9
    assert link.tokens.acquire(flits, lambda: None)
    before = link.tokens.available
    request = Request(address=0, payload_bytes=128, is_write=True, port=0)
    device.submit_from_link(request, arrival_ns=0.0)
    sim.run()
    assert link.tokens.available == before + flits


def test_missing_response_handler_raises():
    sim = Simulator()
    device = HMCDevice(sim)
    request = Request(address=0, payload_bytes=16, is_write=False, port=0)
    device.submit_from_link(request, arrival_ns=0.0)
    with pytest.raises(ConfigurationError):
        sim.run()


def test_data_store_roundtrip_and_reset():
    sim = Simulator()
    device, done = make_device(sim)
    device.enable_data_store()
    payload = b"\xab" * 16
    write = Request(address=256, payload_bytes=16, is_write=True, port=0, data=payload)
    submit(device, write)
    sim.run()
    read = Request(address=256, payload_bytes=16, is_write=False, port=0)
    submit(device, read, arrival_ns=sim.now)
    sim.run()
    assert read.data == payload
    device.reset()  # thermal shutdown loses DRAM contents
    read2 = Request(address=256, payload_bytes=16, is_write=False, port=0)
    submit(device, read2, arrival_ns=sim.now)
    sim.run()
    assert read2.data is None


def test_total_queued_and_reset_counters():
    sim = Simulator()
    device, _ = make_device(sim)
    for i in range(8):
        request = Request(address=i * 2048, payload_bytes=128, is_write=False, port=0)
        submit(device, request)
    sim.run()
    assert device.total_queued == 0
    assert sum(v.requests_accepted for v in device.vaults) == 8
    device.reset_counters()
    assert sum(v.requests_accepted for v in device.vaults) == 0


def test_wire_scale_speeds_up_channels():
    """Link geometry scales the effective channel rates (Eq. 2 ablation)."""
    from repro.hmc.config import LinkConfig
    from dataclasses import replace as dc_replace

    slow_cfg = dc_replace(
        HMC_1_1_4GB, links=LinkConfig(num_links=2, lanes_per_link=8, gbps_per_lane=10.0)
    )
    fast = HMCDevice(Simulator())
    slow = HMCDevice(Simulator(), config=slow_cfg)
    ratio = slow.links[0].rx.bytes_per_ns / fast.links[0].rx.bytes_per_ns
    assert ratio == pytest.approx(10.0 / 15.0)


def test_quadrant_reachability_with_two_links():
    """Quadrants 2 and 3 are remote to both links on the AC-510."""
    sim = Simulator()
    device, _ = make_device(sim)
    for link in (0, 1):
        local = device.route_delay_ns(link, device.link_quadrant(link))
        for quadrant in range(4):
            delay = device.route_delay_ns(link, quadrant)
            if quadrant == device.link_quadrant(link):
                assert delay == local
            else:
                assert delay > local
