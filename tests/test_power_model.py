"""Tests for the power model and the coupled operating-point solve."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.packet import RequestType
from repro.power.model import (
    PowerModel,
    SERDES_POWER_FRACTION,
    WRITE_FRACTION,
    solve_operating_point,
)
from repro.thermal.cooling import CFG1, CFG2, CFG4

MODEL = PowerModel()
bandwidths = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)


def test_activity_power_slope_matches_paper():
    """Fig. 11b: ~2 W from 5 to 20 GB/s for reads."""
    rise = MODEL.activity_power_w(20.0, RequestType.READ) - MODEL.activity_power_w(
        5.0, RequestType.READ
    )
    assert rise == pytest.approx(2.0, abs=0.2)


def test_writes_cost_more_per_byte():
    assert MODEL.activity_power_w(10.0, RequestType.WRITE) > MODEL.activity_power_w(
        10.0, RequestType.READ
    )


def test_negative_bandwidth_rejected():
    with pytest.raises(ValueError):
        MODEL.activity_power_w(-1.0, RequestType.READ)


def test_leakage_referenced_to_best_cooled_idle():
    assert MODEL.leakage_w(CFG1.idle_surface_c) == 0.0
    assert MODEL.leakage_w(CFG1.idle_surface_c + 10) == pytest.approx(1.0)


def test_system_power_composition():
    watts = MODEL.system_power_w(3.0, CFG1.idle_surface_c)
    assert watts == pytest.approx(100.0 + 4.0 + 3.0)


def test_serdes_breakdown_is_43_percent():
    breakdown = MODEL.breakdown(10.0)
    assert breakdown.serdes_w == pytest.approx(4.3)
    assert breakdown.total_w == pytest.approx(10.0)
    assert SERDES_POWER_FRACTION == 0.43


def test_write_fractions():
    assert WRITE_FRACTION[RequestType.READ] == 0.0
    assert WRITE_FRACTION[RequestType.WRITE] == 1.0
    assert WRITE_FRACTION[RequestType.READ_MODIFY_WRITE] == 0.5


# ----------------------------------------------------------------------
# operating point
# ----------------------------------------------------------------------
def test_operating_point_idle():
    point = solve_operating_point(CFG2, RequestType.READ, 0.0)
    assert point.surface_c == pytest.approx(CFG2.idle_surface_c)
    assert point.thermally_safe


def test_operating_point_ro_survives_cfg4_at_full_bandwidth():
    point = solve_operating_point(CFG4, RequestType.READ, 20.6)
    assert 75.0 <= point.surface_c <= 84.0  # "reaches 80 degC"
    assert point.thermally_safe


def test_operating_point_wo_fails_cfg4():
    point = solve_operating_point(CFG4, RequestType.WRITE, 14.5)
    assert not point.thermally_safe
    assert point.failure_threshold_c == pytest.approx(75.0)


def test_operating_point_junction_above_surface():
    point = solve_operating_point(CFG2, RequestType.READ, 15.0)
    assert point.junction_c == pytest.approx(point.surface_c + 8.0)


@given(bandwidths)
def test_system_power_monotone_in_bandwidth(bw):
    lo = solve_operating_point(CFG2, RequestType.READ, bw)
    hi = solve_operating_point(CFG2, RequestType.READ, bw + 1.0)
    assert hi.system_power_w > lo.system_power_w
    assert hi.surface_c > lo.surface_c


@given(bandwidths)
def test_weaker_cooling_costs_power_at_same_bandwidth(bw):
    """Fig. 10's line separation: the power-temperature coupling."""
    strong = solve_operating_point(CFG1, RequestType.READ, bw)
    weak = solve_operating_point(CFG4, RequestType.READ, bw)
    assert weak.system_power_w > strong.system_power_w


def test_cooling_power_carried_through():
    point = solve_operating_point(CFG1, RequestType.READ, 5.0)
    assert point.cooling_power_w == pytest.approx(CFG1.cooling_power_w)


def test_explicit_write_fraction_override():
    point = solve_operating_point(
        CFG2, RequestType.READ, 10.0, write_fraction=0.5
    )
    assert point.write_fraction == 0.5
    assert point.failure_threshold_c == pytest.approx(75.0)
