"""Tests for the trace replayer and kernel characterization."""

import pytest

from repro.workloads.characterize import characterize
from repro.workloads.kernels import (
    hash_table_updates,
    pointer_chase,
    streaming,
    strided,
)
from repro.workloads.replay import TraceReplayer, replay_trace
from repro.workloads.trace import Trace, TraceEntry


def test_replay_completes_and_counts():
    trace = streaming(200)
    result = replay_trace(trace)
    assert result.references == 200
    assert result.raw_bytes == 200 * 160
    assert result.elapsed_ns > 0
    assert result.bandwidth_gbs > 0
    assert result.latency_min_ns <= result.latency_avg_ns <= result.latency_max_ns


def test_pointer_chase_is_one_request_per_rtt():
    result = replay_trace(pointer_chase(50))
    # Serialized: elapsed ~ references x round-trip time.
    per_reference = result.elapsed_ns / result.references
    assert per_reference == pytest.approx(result.latency_avg_ns, rel=0.1)
    assert result.bandwidth_gbs < 0.2


def test_independent_stream_much_faster_than_chase():
    chase = replay_trace(pointer_chase(50, payload_bytes=16))
    independent = replay_trace(streaming(50, payload_bytes=16))
    assert independent.elapsed_ns < chase.elapsed_ns / 5


def test_hash_updates_pipeline_despite_pairwise_dependencies():
    """Independent read/write pairs must overtake each other."""
    result = replay_trace(hash_table_updates(100))
    serialized_estimate = 200 * result.latency_avg_ns
    assert result.elapsed_ns < serialized_estimate / 5


def test_window_one_serializes_everything():
    fast = replay_trace(streaming(40), window=64)
    slow = replay_trace(streaming(40), window=1)
    assert slow.elapsed_ns > 3 * fast.elapsed_ns


def test_dependency_order_respected():
    board_done = []

    class Probe(TraceReplayer):
        def _on_complete(self, request):
            board_done.append(request.trace_index)
            super()._on_complete(request)

    trace = pointer_chase(10)
    Probe().replay(trace)
    assert board_done == sorted(board_done)


def test_replayer_reusable_sequentially():
    replayer = TraceReplayer()
    first = replayer.replay(streaming(50))
    second = replayer.replay(strided(50, 4096))
    assert first.references == second.references == 50


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        replay_trace(Trace(name="x", payload_bytes=16, entries=()))


def test_bad_window_rejected():
    with pytest.raises(ValueError):
        TraceReplayer(window=0)


def test_replay_spreads_over_both_links():
    trace = streaming(300)
    replayer = TraceReplayer()
    replayer.replay(trace)
    links = replayer.board.device.links
    assert links[0].tx.packets > 0
    assert links[1].tx.packets > 0


# ----------------------------------------------------------------------
# characterize
# ----------------------------------------------------------------------
def test_characterize_streaming():
    report = characterize(streaming(500))
    assert report.pattern_class == "distributed: all vaults"
    assert not report.latency_bound
    assert "128 B" in report.advice() or "row reuse" in report.advice()


def test_characterize_pointer_chase():
    report = characterize(pointer_chase(60))
    assert report.latency_bound
    assert "chain" in report.advice()
    assert report.result.bandwidth_gbs < 0.2


def test_characterize_single_vault_advice():
    report = characterize(strided(300, 2048))
    assert report.pattern_class == "targeted: single vault"
    assert "stripe" in report.advice()
